package integrate

import (
	"testing"

	"gent/internal/metrics"
	"gent/internal/table"
)

func source() *table.Table {
	s := table.New("Source", "ID", "Name", "Age", "Gender", "Education")
	s.Key = []int{0}
	s.AddRow(table.S("id0"), table.S("Smith"), table.N(27), table.Null, table.S("Bachelors"))
	s.AddRow(table.S("id1"), table.S("Brown"), table.N(24), table.S("Male"), table.S("Masters"))
	s.AddRow(table.S("id2"), table.S("Wang"), table.N(32), table.S("Female"), table.S("High School"))
	return s
}

func candA() *table.Table {
	a := table.New("A", "ID", "Name", "Education")
	a.AddRow(table.S("id0"), table.S("Smith"), table.S("Bachelors"))
	a.AddRow(table.S("id1"), table.S("Brown"), table.Null)
	a.AddRow(table.S("id2"), table.S("Wang"), table.S("High School"))
	return a
}

func candB() *table.Table {
	b := table.New("B", "ID", "Name", "Age")
	b.AddRow(table.S("id0"), table.S("Smith"), table.N(27))
	b.AddRow(table.S("id1"), table.S("Brown"), table.N(24))
	b.AddRow(table.S("id2"), table.S("Wang"), table.N(32))
	return b
}

func candC() *table.Table {
	c := table.New("C", "ID", "Name", "Gender")
	c.AddRow(table.S("id0"), table.S("Smith"), table.S("Male"))
	c.AddRow(table.S("id1"), table.S("Brown"), table.S("Male"))
	c.AddRow(table.S("id2"), table.S("Wang"), table.S("Male"))
	return c
}

func TestReclaimJoinsComplementaryTables(t *testing.T) {
	src := source()
	got := New(src).Reclaim([]*table.Table{candA(), candB()})
	// A and B complement per key: each person becomes one tuple with Age and
	// Education but null Gender.
	want := table.New("w", src.Cols...)
	want.AddRow(table.S("id0"), table.S("Smith"), table.N(27), table.Null, table.S("Bachelors"))
	want.AddRow(table.S("id1"), table.S("Brown"), table.N(24), table.Null, table.Null)
	want.AddRow(table.S("id2"), table.S("Wang"), table.N(32), table.Null, table.S("High School"))
	if !table.SameInstance(got, want) {
		t.Errorf("reclaimed:\n%s\nwant:\n%s", got, want)
	}
}

func TestReclaimProtectsCorrectNulls(t *testing.T) {
	// Figure 5: integrating A, B, C must NOT fill Smith's correct null
	// Gender with C's erroneous "Male"; Brown's correct Male must merge.
	src := source()
	got := New(src).Reclaim([]*table.Table{candA(), candB(), candC()})

	var smithGenders, brownGenders []table.Value
	for _, r := range got.Rows {
		switch {
		case r[0].Equal(table.S("id0")):
			smithGenders = append(smithGenders, r[3])
		case r[0].Equal(table.S("id1")):
			brownGenders = append(brownGenders, r[3])
		}
	}
	// Smith's fully-merged tuple must keep the null; Male may appear only in
	// a separate partial tuple.
	foundProtected := false
	for i, g := range smithGenders {
		_ = i
		if g.IsNull() {
			foundProtected = true
		}
	}
	if !foundProtected {
		t.Errorf("Smith's correct null Gender was filled: %s", got)
	}
	foundMale := false
	for _, g := range brownGenders {
		if g.Equal(table.S("Male")) {
			foundMale = true
		}
	}
	if !foundMale {
		t.Errorf("Brown's correct Male Gender was lost: %s", got)
	}
	// The EIS of the result must beat integrating without the guard (plain
	// full disjunction of the three tables).
	fd, _ := table.FullDisjunction([]*table.Table{candA(), candB(), candC()}, 0)
	if metrics.EIS(src, got) < metrics.EIS(src, fd) {
		t.Errorf("guarded integration (%v) must not lose to plain FD (%v)",
			metrics.EIS(src, got), metrics.EIS(src, fd))
	}
}

func TestReclaimPerfectWithCleanTables(t *testing.T) {
	// A vertical partition of the source reclaims it perfectly.
	src := table.New("S", "k", "a", "b")
	src.Key = []int{0}
	src.AddRow(table.S("k1"), table.S("a1"), table.S("b1"))
	src.AddRow(table.S("k2"), table.S("a2"), table.S("b2"))
	left := src.Project("k", "a")
	right := src.Project("k", "b")
	got := New(src).Reclaim([]*table.Table{left, right})
	rep := metrics.Evaluate(src, got)
	if !rep.PerfectReclamation {
		t.Errorf("vertical partition not perfectly reclaimed: %+v\n%s", rep, got)
	}
}

func TestReclaimHorizontalUnion(t *testing.T) {
	// A horizontal partition (same schema) inner-unions back together.
	src := table.New("S", "k", "v")
	src.Key = []int{0}
	for _, kv := range [][2]string{{"k1", "v1"}, {"k2", "v2"}, {"k3", "v3"}} {
		src.AddRow(table.S(kv[0]), table.S(kv[1]))
	}
	top := src.Select(table.ColIn("k", map[string]bool{table.S("k1").Key(): true}))
	rest := src.Select(table.ColIn("k", map[string]bool{
		table.S("k2").Key(): true, table.S("k3").Key(): true,
	}))
	got := New(src).Reclaim([]*table.Table{top, rest})
	if rep := metrics.Evaluate(src, got); !rep.PerfectReclamation {
		t.Errorf("horizontal partition not reclaimed: %+v\n%s", rep, got)
	}
}

func TestReclaimFiltersForeignRows(t *testing.T) {
	// Rows with keys outside the Source must be selected away (precision).
	src := source()
	extra := candB()
	extra.AddRow(table.S("foreign"), table.S("Nobody"), table.N(1))
	got := New(src).Reclaim([]*table.Table{extra})
	for _, r := range got.Rows {
		if r[0].Equal(table.S("foreign")) {
			t.Errorf("foreign key survived ProjectSelect:\n%s", got)
		}
	}
}

func TestReclaimEmptyInputs(t *testing.T) {
	src := source()
	got := New(src).Reclaim(nil)
	if len(got.Rows) != 0 || len(got.Cols) != len(src.Cols) {
		t.Errorf("empty reclamation must be an empty table with the source schema:\n%s", got)
	}
	// A table without the key contributes nothing.
	nokey := table.New("nk", "Name")
	nokey.AddRow(table.S("Smith"))
	got2 := New(src).Reclaim([]*table.Table{nokey})
	if len(got2.Rows) != 0 {
		t.Errorf("keyless table produced rows:\n%s", got2)
	}
}

func TestReclaimOutputSchemaMatchesSource(t *testing.T) {
	src := source()
	got := New(src).Reclaim([]*table.Table{candB()})
	if len(got.Cols) != len(src.Cols) {
		t.Fatalf("schema mismatch: %v", got.Cols)
	}
	for i, c := range src.Cols {
		if got.Cols[i] != c {
			t.Fatalf("column %d = %q, want %q", i, got.Cols[i], c)
		}
	}
	// Education (absent from B) must be all nulls.
	ei := got.ColIndex("Education")
	for _, r := range got.Rows {
		if !r[ei].IsNull() {
			t.Error("padded column contains non-null")
		}
	}
}

func TestReclaimLeavesNoLabels(t *testing.T) {
	src := source()
	in := New(src)
	got := in.Reclaim([]*table.Table{candA(), candB(), candC()})
	for _, r := range got.Rows {
		for _, v := range r {
			if v.Kind == table.KindLabel {
				t.Fatalf("labeled null leaked into output: %s", got)
			}
		}
	}
}

func TestLabelStability(t *testing.T) {
	in := New(source())
	a := in.label(slotRef{s: "k1"}, "Gender")
	b := in.label(slotRef{s: "k1"}, "Gender")
	c := in.label(slotRef{s: "k2"}, "Gender")
	if !a.Equal(b) {
		t.Error("same slot must get the same label")
	}
	if a.Equal(c) {
		t.Error("different slots must get different labels")
	}
}

func TestIntegratorProjectSelect(t *testing.T) {
	src := source()
	in := New(src)

	// Keyed tables: the integrator path must agree with the package-level
	// one-shot form row for row.
	withExtra := candB()
	withExtra.Cols = append(withExtra.Cols, "Irrelevant")
	for i := range withExtra.Rows {
		withExtra.Rows[i] = append(withExtra.Rows[i], table.S("x"))
	}
	withExtra.AddRow(table.S("foreign"), table.S("Nobody"), table.N(1), table.S("x"))
	got := in.ProjectSelect(withExtra)
	want := ProjectSelect(src, withExtra)
	if got == nil || !table.EqualRows(got, want) {
		t.Fatalf("integrator ProjectSelect = %s, package-level = %s", got, want)
	}
	if got.HasCols("Irrelevant") {
		t.Error("non-source column survived projection")
	}
	for _, r := range got.Rows {
		if r[0].Equal(table.S("foreign")) {
			t.Errorf("foreign key survived selection:\n%s", got)
		}
	}

	// Key-less tables: the integrator path drops them (Reclaim's behavior),
	// while the package-level form keeps them for full-disjunction consumers.
	nokey := table.New("nk", "Name", "Education")
	nokey.AddRow(table.S("Smith"), table.S("Bachelors"))
	nokey.AddRow(table.S("Smith"), table.S("Bachelors"))
	if sel := in.ProjectSelect(nokey); sel != nil {
		t.Errorf("integrator kept a key-less table:\n%s", sel)
	}
	kept := ProjectSelect(src, nokey)
	if kept == nil || len(kept.Rows) != 1 {
		t.Errorf("package-level ProjectSelect must keep the key-less table deduplicated, got %s", kept)
	}

	// Nothing of the source's schema: both return nil.
	junk := table.New("junk", "x")
	junk.AddRow(table.S("a"))
	if in.ProjectSelect(junk) != nil || ProjectSelect(src, junk) != nil {
		t.Error("schema-disjoint table must project to nil")
	}
}
