package integrate

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gent/internal/table"
)

// randomIntegrationCorpus builds a random keyed source and originating
// tables covering the regimes integration must handle: missing columns,
// nulls over source nulls (label slots), contradictions, duplicate rows,
// foreign and null keys, and numeric-text spellings of the same number.
func randomIntegrationCorpus(rng *rand.Rand) (*table.Table, []*table.Table) {
	nCols := 3 + rng.Intn(3)
	cols := make([]string, nCols)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	src := table.New("S", cols...)
	src.Key = []int{0}
	nRows := 4 + rng.Intn(8)
	for r := 0; r < nRows; r++ {
		row := make([]table.Value, nCols)
		row[0] = table.S(fmt.Sprintf("k%d", r))
		for c := 1; c < nCols; c++ {
			switch rng.Intn(5) {
			case 0:
				row[c] = table.Null
			case 1:
				row[c] = table.N(float64(r*7 + c))
			default:
				row[c] = table.S(fmt.Sprintf("v%d_%d", r, c))
			}
		}
		src.AddRow(row...)
	}

	nOrigs := 2 + rng.Intn(4)
	origs := make([]*table.Table, 0, nOrigs)
	for i := 0; i < nOrigs; i++ {
		keep := []int{0}
		for c := 1; c < nCols; c++ {
			if rng.Intn(3) != 0 {
				keep = append(keep, c)
			}
		}
		names := make([]string, len(keep))
		for j, c := range keep {
			names[j] = cols[c]
		}
		o := table.New(fmt.Sprintf("O%d", i), names...)
		for r := 0; r < nRows; r++ {
			if rng.Intn(4) == 0 {
				continue
			}
			copies := 1 + rng.Intn(2)
			for d := 0; d < copies; d++ {
				row := make([]table.Value, len(keep))
				for j, c := range keep {
					v := src.Rows[r][c]
					switch {
					case c == 0 && rng.Intn(10) == 0:
						row[j] = table.S("foreign")
					case c == 0 && rng.Intn(12) == 0:
						row[j] = table.Null
					case c == 0:
						row[j] = v
					case rng.Intn(4) == 0:
						row[j] = table.Null
					case rng.Intn(5) == 0:
						row[j] = table.S("wrong" + fmt.Sprint(rng.Intn(4)))
					case v.Kind == table.KindNumber && rng.Intn(3) == 0:
						row[j] = table.Parse(fmt.Sprintf("%v.0", v.Num))
					default:
						row[j] = v
					}
				}
				o.Rows = append(o.Rows, row)
			}
		}
		origs = append(origs, o)
	}
	return src, origs
}

// TestIntegrateInternedMatchesReference is the interned key path's
// equivalence oracle: with a dictionary supplied — fresh, or preloaded with
// every originating value as the pipeline's lake dictionary is — Reclaim
// must produce a bit-identical table (columns, rows, row order) to the
// canonical-string reference, and ProjectSelect must agree row for row.
func TestIntegrateInternedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		src, origs := randomIntegrationCorpus(rng)
		preloaded := table.NewDict()
		for _, o := range origs {
			table.InternTable(preloaded, o)
		}
		want := New(src).Reclaim(origs)
		for di, dict := range []*table.Dict{table.NewDict(), preloaded} {
			got := NewWith(src, dict).Reclaim(origs)
			if !reflect.DeepEqual(got.Cols, want.Cols) {
				t.Fatalf("trial %d dict %d: columns %v vs %v", trial, di, got.Cols, want.Cols)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Fatalf("trial %d dict %d: reclaimed rows diverged\ninterned:\n%s\nreference:\n%s",
					trial, di, got, want)
			}
		}

		in := NewWith(src, table.NewDict())
		ref := New(src)
		for i, o := range origs {
			a, b := in.ProjectSelect(o), ref.ProjectSelect(o)
			if (a == nil) != (b == nil) {
				t.Fatalf("trial %d orig %d: ProjectSelect nil divergence", trial, i)
			}
			if a != nil && !reflect.DeepEqual(a.Rows, b.Rows) {
				t.Fatalf("trial %d orig %d: ProjectSelect rows diverged", trial, i)
			}
		}
	}
}
