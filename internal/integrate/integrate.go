// Package integrate implements Gen-T's Table Reclamation phase (Algorithm
// 2): originating tables are projected and selected down to the Source's
// columns and keys, inner-unioned when they share schemas, protected by
// labeled nulls wherever they correctly agree with a Source null, reduced to
// minimal form, and finally folded together with outer unions — applying
// complementation (κ) and subsumption (β) only when doing so does not lower
// the EIS score.
package integrate

import (
	"context"
	"fmt"
	"strings"

	"gent/internal/metrics"
	"gent/internal/table"
)

// Integrator reclaims one Source Table from sets of originating tables. It
// is stateful only for label identities, so one Integrator must be used for
// one Source.
//
// When built with a value dictionary (NewWith), every source-key lookup —
// srcByKey / labeledByKey membership, labeling slots, the guards' row
// grouping — runs on interned [arity]uint32 key tuples instead of built key
// strings; New keeps the canonical-string path as the reference. The two are
// equivalence-tested to produce bit-identical reclaimed tables.
type Integrator struct {
	src *table.Table
	// labeledSrc is the Source with its nulls replaced by labels, so EIS
	// evaluation rewards preserving a correct null and penalizes filling it.
	labeledSrc *table.Table
	labels     map[string]int64
	labelsID   map[labelSlot]int64
	labelOf    map[int64]bool
	nextID     int64
	// dict, when non-nil (and the key arity fits table.MaxInternKeyArity),
	// switches key addressing to interned ID tuples.
	dict   table.Interner
	useIDs bool
	// srcByKey indexes the Source's rows by canonical key. It is built once
	// here and shared by every labeling pass and key-membership check —
	// Reclaim calls labelSourceNulls on every union step, which used to
	// rebuild this map each time. Exactly one of the str/ID pairs is built.
	srcByKey   map[string]table.Row
	srcByIDKey map[table.IDKey]table.Row
	// labeledByKey is srcByKey over labeledSrc, for the tuple scorer's
	// label-aware comparisons (guards.go); likewise built once.
	labeledByKey   map[string]table.Row
	labeledByIDKey map[table.IDKey]table.Row
}

// labelSlot addresses a (source key, column name) slot on the interned path.
type labelSlot struct {
	key table.IDKey
	col string
}

// New prepares an Integrator for the given Source Table (which must have a
// key), keyed by canonical strings — the reference path.
func New(src *table.Table) *Integrator { return NewWith(src, nil) }

// NewWith is New with an optional value dictionary: when non-nil, key
// lookups run on interned ID tuples. The Source's key values are interned
// here; originating-table values unknown to the dictionary provably key no
// Source row, so lookups misses mean exactly what they mean on strings.
func NewWith(src *table.Table, dict table.Interner) *Integrator {
	in := &Integrator{
		src:     src,
		labelOf: make(map[int64]bool),
	}
	in.useIDs = dict != nil && len(src.Key) > 0 && len(src.Key) <= table.MaxInternKeyArity
	if in.useIDs {
		in.dict = dict
		in.labelsID = make(map[labelSlot]int64)
		in.srcByIDKey = rowsByIDKey(dict, src)
	} else {
		in.labels = make(map[string]int64)
		in.srcByKey = rowsByKey(src)
	}
	in.labeledSrc = in.labelSourceNulls(src)
	if in.useIDs {
		in.labeledByIDKey = rowsByIDKey(dict, in.labeledSrc)
	} else {
		in.labeledByKey = rowsByKey(in.labeledSrc)
	}
	return in
}

// rowsByKey indexes a keyed table's rows by canonical key, skipping rows
// whose key contains a null.
func rowsByKey(t *table.Table) map[string]table.Row {
	byKey := make(map[string]table.Row, len(t.Rows))
	for _, r := range t.Rows {
		if k := t.RowKey(r); k != "" {
			byKey[k] = r
		}
	}
	return byKey
}

// rowsByIDKey is rowsByKey over interned ID tuples, interning the key values
// (the table here is always the Source or its labeled twin, whose key cells
// define the key space lookups are resolved against).
func rowsByIDKey(d table.Interner, t *table.Table) map[table.IDKey]table.Row {
	byKey := make(map[table.IDKey]table.Row, len(t.Rows))
	for _, r := range t.Rows {
		if k, ok := table.InternIDKey(d, r, t.Key); ok {
			byKey[k] = r
		}
	}
	return byKey
}

// slotRef carries a row's source-key identity to the labeler under either
// key representation.
type slotRef struct {
	s  string
	id table.IDKey
}

// alignRow resolves the Source row sharing r's key (cells at keyIdx), with
// the slot reference labeling needs; ok is false when the key is null or
// keys no Source row.
func (in *Integrator) alignRow(r table.Row, keyIdx []int) (table.Row, slotRef, bool) {
	if in.useIDs {
		k, ok := table.LookupIDKey(in.dict, r, keyIdx)
		if !ok {
			return nil, slotRef{}, false
		}
		srow, ok := in.srcByIDKey[k]
		if !ok {
			return nil, slotRef{}, false
		}
		return srow, slotRef{id: k}, true
	}
	key, ok := rowKeyAt(r, keyIdx)
	if !ok {
		return nil, slotRef{}, false
	}
	srow, ok := in.srcByKey[key]
	if !ok {
		return nil, slotRef{}, false
	}
	return srow, slotRef{s: key}, true
}

// label returns the stable label for a (source key, column name) slot: the
// same slot gets the same label in every table, so labeled tuples still
// deduplicate, subsume and complement consistently.
func (in *Integrator) label(slot slotRef, col string) table.Value {
	if in.useIDs {
		ls := labelSlot{key: slot.id, col: col}
		id, ok := in.labelsID[ls]
		if !ok {
			in.nextID++
			id = in.nextID
			in.labelsID[ls] = id
			in.labelOf[id] = true
		}
		return table.Label(id)
	}
	s := slot.s + "\x02" + col
	id, ok := in.labels[s]
	if !ok {
		in.nextID++
		id = in.nextID
		in.labels[s] = id
		in.labelOf[id] = true
	}
	return table.Label(id)
}

// ProjectSelect applies Algorithm 2 line 3 to one originating table using
// the Integrator's precomputed source-key index: project onto the Source's
// columns and keep only rows whose key values appear in the Source. Tables
// that do not carry the Source's key columns return nil — their rows can
// never align with a Source tuple, and Expand guarantees Gen-T's originating
// tables carry the key. It also returns nil when nothing of the Source's
// schema or key set remains.
func (in *Integrator) ProjectSelect(t *table.Table) *table.Table {
	p := t.Project(in.src.Cols...)
	if len(p.Cols) == 0 || len(p.Rows) == 0 || !p.HasCols(in.src.KeyCols()...) {
		return nil
	}
	return selectKeyed(in.src, p, in.hasSrcKey)
}

// hasSrcKey reports whether a row (key cells at keyIdx) keys a Source row,
// under the Integrator's active key representation.
func (in *Integrator) hasSrcKey(r table.Row, keyIdx []int) bool {
	_, _, ok := in.alignRow(r, keyIdx)
	return ok
}

// ProjectSelect is the one-shot form of Integrator.ProjectSelect for callers
// without an Integrator; it rebuilds the source-key index on every call.
// Unlike the integrator path — Gen-T's Reclaim, which drops key-less tables —
// it keeps key-less tables (projected and deduplicated), because its
// full-disjunction consumers (ALITE-PS) can still combine them through other
// shared columns.
func ProjectSelect(src, t *table.Table) *table.Table {
	p := t.Project(src.Cols...)
	if len(p.Cols) == 0 || len(p.Rows) == 0 {
		return nil
	}
	if !p.HasCols(src.KeyCols()...) {
		p.Key = nil
		return p.DropDuplicates()
	}
	srcByKey := rowsByKey(src)
	return selectKeyed(src, p, func(r table.Row, keyIdx []int) bool {
		key, ok := rowKeyAt(r, keyIdx)
		if !ok {
			return false
		}
		_, hit := srcByKey[key]
		return hit
	})
}

// selectKeyed keeps the rows of an already-projected table whose key values
// appear in the Source, per the supplied membership check.
func selectKeyed(src *table.Table, p *table.Table, member func(r table.Row, keyIdx []int) bool) *table.Table {
	p.Key = nil
	keyIdx := make([]int, len(src.Key))
	for i, k := range src.Key {
		keyIdx[i] = p.ColIndex(src.Cols[k])
	}
	sel := table.New(p.Name, p.Cols...)
	for _, r := range p.Rows {
		if member(r, keyIdx) {
			sel.Rows = append(sel.Rows, r)
		}
	}
	if len(sel.Rows) == 0 {
		return nil
	}
	return sel
}

// Reclaim integrates the originating tables into a possible reclaimed Source
// Table with exactly the Source's schema.
func (in *Integrator) Reclaim(origs []*table.Table) *table.Table {
	out, _ := in.ReclaimContext(context.Background(), origs)
	return out
}

// ReclaimContext is Reclaim under a context: cancellation is checked before
// each originating table's ProjectSelect and before each step of the outer-
// union fold (the integration loop's per-table guarded merge is the
// expensive unit of work), returning ctx.Err() with a nil table.
func (in *Integrator) ReclaimContext(ctx context.Context, origs []*table.Table) (*table.Table, error) {
	src := in.src

	// ProjectSelect (line 3): keep only Source columns and rows whose key
	// values appear in the Source. Gen-T's originating tables carry the
	// Source key (Expand guarantees it), so key-less leftovers — whose
	// tuples could never align — come back nil and are dropped here.
	kept := make([]*table.Table, 0, len(origs))
	for _, t := range origs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if sel := in.ProjectSelect(t); sel != nil {
			kept = append(kept, sel)
		}
	}
	if len(kept) == 0 {
		out := table.New("reclaimed")
		return out.PadNullColumns(src.Cols), nil
	}

	// InnerUnion (line 4): merge tables with identical column-name sets.
	unioned := innerUnionGroups(kept)

	// LabelSourceNulls (line 5) and TakeMinimalForm (line 6).
	for i, t := range unioned {
		labeled := in.labelSourceNulls(t)
		unioned[i] = table.MinimalForm(labeled)
	}

	// Integration loop (lines 7–13): outer union one table at a time, then
	// apply complementation and subsumption under the Figure 5 guard — a
	// merge or removal happens only when it does not reduce the affected
	// tuple's error-aware similarity to its Source tuple. After each union
	// the accumulator is relabeled: ⊎ introduces nulls for columns a side
	// lacked, and where the Source is also null those are "correct nulls"
	// that must not be filled by a later complementation. Labeling is
	// idempotent — each (key, column) slot has one stable label.
	acc := unioned[0]
	for _, t := range unioned[1:] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		acc = in.labelSourceNulls(table.OuterUnion(acc, t))
		acc = in.guardedComplement(acc)
		acc = in.guardedSubsume(acc)
	}
	if len(unioned) == 1 {
		acc = in.labelSourceNulls(acc)
		acc = in.guardedComplement(acc)
		acc = in.guardedSubsume(acc)
	}

	// RemoveLabeledNulls (line 14) and schema padding (lines 15–16).
	out := in.removeLabels(acc)
	out = out.PadNullColumns(src.Cols)
	reordered, err := out.ReorderCols(src.Cols)
	if err != nil {
		panic(fmt.Sprintf("integrate: unreachable: %v", err))
	}
	reordered.Name = "reclaimed:" + src.Name
	reordered.Key = nil
	return reordered.DropDuplicates(), nil
}

// score is evaluateSimilarity(): EIS against the labeled Source, so that a
// preserved labeled null counts as a match and an over-combined value does
// not.
func (in *Integrator) score(t *table.Table) float64 {
	return metrics.EIS(in.labeledSrc, t)
}

// labelSourceNulls replaces, in t, every null that sits in a slot where the
// Source is also null (same key, same column) with that slot's unique label.
func (in *Integrator) labelSourceNulls(t *table.Table) *table.Table {
	src := in.src
	keyIdx := make([]int, 0, len(src.Key))
	for _, k := range src.Key {
		ci := t.ColIndex(src.Cols[k])
		if ci < 0 {
			return t.Clone()
		}
		keyIdx = append(keyIdx, ci)
	}
	srcColOf := make([]int, len(t.Cols))
	for i, name := range t.Cols {
		srcColOf[i] = src.ColIndex(name)
	}
	out := table.New(t.Name, t.Cols...)
	out.Key = append([]int(nil), t.Key...)
	for _, r := range t.Rows {
		srow, slot, ok := in.alignRow(r, keyIdx)
		if !ok {
			out.Rows = append(out.Rows, r.Clone())
			continue
		}
		nr := r.Clone()
		for i := range nr {
			if sc := srcColOf[i]; sc >= 0 && nr[i].IsNull() && srow[sc].IsNull() {
				nr[i] = in.label(slot, t.Cols[i])
			}
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// removeLabels reverts this Integrator's labels back to nulls.
func (in *Integrator) removeLabels(t *table.Table) *table.Table {
	out := table.New(t.Name, t.Cols...)
	out.Key = append([]int(nil), t.Key...)
	for _, r := range t.Rows {
		nr := r.Clone()
		for i, v := range nr {
			if v.Kind == table.KindLabel && in.labelOf[v.ID] {
				nr[i] = table.Null
			}
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// innerUnionGroups unions tables with identical column-name sets, reducing
// the integration space (Algorithm 2 line 4).
func innerUnionGroups(ts []*table.Table) []*table.Table {
	groups := make(map[string]*table.Table)
	var order []string
	for _, t := range ts {
		sig := schemaSignature(t)
		if have, ok := groups[sig]; ok {
			groups[sig] = table.InnerUnion(have, t)
		} else {
			groups[sig] = t
			order = append(order, sig)
		}
	}
	out := make([]*table.Table, 0, len(order))
	for _, sig := range order {
		out = append(out, groups[sig])
	}
	return out
}

func schemaSignature(t *table.Table) string {
	cols := append([]string(nil), t.Cols...)
	// Column order is irrelevant to inner union, so the signature sorts.
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j] < cols[j-1]; j-- {
			cols[j], cols[j-1] = cols[j-1], cols[j]
		}
	}
	return strings.Join(cols, "\x01")
}

func rowKeyAt(r table.Row, idx []int) (string, bool) {
	var b strings.Builder
	for _, i := range idx {
		if r[i].IsNull() {
			return "", false
		}
		b.WriteString(r[i].Key())
		b.WriteByte('\x01')
	}
	return b.String(), true
}
