package integrate

import (
	"context"
	"errors"
	"testing"

	"gent/internal/table"
)

// TestReclaimContextEquivalence: the context path with a live context is the
// plain Reclaim.
func TestReclaimContextEquivalence(t *testing.T) {
	src := source()
	origs := []*table.Table{candA(), candB(), candC()}
	plain := New(src).Reclaim(origs)
	ctxed, err := New(src).ReclaimContext(context.Background(), origs)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != ctxed.String() {
		t.Error("ReclaimContext diverged from Reclaim")
	}
}

// TestReclaimContextCanceled: cancellation preempts the per-table fold.
func TestReclaimContextCanceled(t *testing.T) {
	src := source()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := New(src).ReclaimContext(ctx, []*table.Table{candA(), candB()})
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("want canceled/nil, got %v / %v", err, out)
	}
}
