package integrate

import (
	"testing"

	"gent/internal/table"
)

func guardSource() *table.Table {
	s := table.New("S", "k", "a", "b")
	s.Key = []int{0}
	s.AddRow(table.S("k1"), table.S("a1"), table.S("b1"))
	s.AddRow(table.S("k2"), table.S("a2"), table.Null)
	return s
}

func TestScorerE(t *testing.T) {
	in := New(guardSource())
	acc := table.New("acc", "k", "a", "b")
	s := in.scorer(acc)
	if s == nil {
		t.Fatal("scorer failed")
	}
	perfect := table.Row{table.S("k1"), table.S("a1"), table.S("b1")}
	if got := s.e(perfect); got != 1 {
		t.Errorf("E(perfect) = %v", got)
	}
	nullified := table.Row{table.S("k1"), table.S("a1"), table.Null}
	if got := s.e(nullified); got != 0.5 {
		t.Errorf("E(nullified) = %v", got)
	}
	erroneous := table.Row{table.S("k1"), table.S("a1"), table.S("WRONG")}
	if got := s.e(erroneous); got != 0 {
		t.Errorf("E(erroneous) = %v, want (1-1)/2", got)
	}
	foreign := table.Row{table.S("nope"), table.S("x"), table.S("y")}
	if got := s.e(foreign); got != -1 {
		t.Errorf("E(foreign key) = %v, want -1", got)
	}
	// A preserved label counts as a match: k2's b is a labeled source null.
	labeled := in.labelSourceNulls(func() *table.Table {
		a := table.New("x", "k", "a", "b")
		a.AddRow(table.S("k2"), table.S("a2"), table.Null)
		return a
	}())
	if got := s.e(labeled.Rows[0]); got != 1 {
		t.Errorf("E(label-preserving) = %v, want 1", got)
	}
}

func TestGuardedComplementMergesCleanPairs(t *testing.T) {
	in := New(guardSource())
	acc := table.New("acc", "k", "a", "b")
	acc.AddRow(table.S("k1"), table.S("a1"), table.Null)
	acc.AddRow(table.S("k1"), table.Null, table.S("b1"))
	got := in.guardedComplement(acc)
	if len(got.Rows) != 1 {
		t.Fatalf("clean complement not merged:\n%s", got)
	}
	want := table.Row{table.S("k1"), table.S("a1"), table.S("b1")}
	if !got.Rows[0].Equal(want) {
		t.Errorf("merged = %v", got.Rows[0])
	}
}

func TestGuardedComplementBlocksNetZeroMerge(t *testing.T) {
	// Merging would add one correct (a1) and one erroneous (WRONG for b1)
	// value — net zero, which must be blocked so the real b1 can merge
	// later.
	in := New(guardSource())
	acc := table.New("acc", "k", "a", "b")
	acc.AddRow(table.S("k1"), table.S("a1"), table.Null)
	acc.AddRow(table.S("k1"), table.Null, table.S("WRONG"))
	got := in.guardedComplement(acc)
	if len(got.Rows) != 2 {
		t.Errorf("net-zero merge happened:\n%s", got)
	}
}

func TestGuardedSubsumeKeepsBetterSubsumed(t *testing.T) {
	in := New(guardSource())
	acc := table.New("acc", "k", "a", "b")
	acc.AddRow(table.S("k1"), table.S("a1"), table.S("WRONG")) // subsumer, E=0
	acc.AddRow(table.S("k1"), table.S("a1"), table.Null)       // subsumed, E=0.5
	got := in.guardedSubsume(acc)
	if len(got.Rows) != 2 {
		t.Errorf("better-scoring subsumed tuple removed:\n%s", got)
	}

	// With a correct subsumer, the subsumed tuple goes.
	acc2 := table.New("acc", "k", "a", "b")
	acc2.AddRow(table.S("k1"), table.S("a1"), table.S("b1"))
	acc2.AddRow(table.S("k1"), table.S("a1"), table.Null)
	got2 := in.guardedSubsume(acc2)
	if len(got2.Rows) != 1 {
		t.Errorf("subsumed tuple survived a correct subsumer:\n%s", got2)
	}
}

func TestGuardedOpsPreserveRowsWithoutKeys(t *testing.T) {
	in := New(guardSource())
	acc := table.New("acc", "k", "a", "b")
	acc.AddRow(table.Null, table.S("x"), table.S("y"))
	if got := in.guardedComplement(acc); len(got.Rows) != 1 {
		t.Error("keyless row lost in complement")
	}
	if got := in.guardedSubsume(acc); len(got.Rows) != 1 {
		t.Error("keyless row lost in subsume")
	}
}
