package table

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Segment files are the on-disk columnar form of an Interned table: the
// [][]uint32 cell columns and the sorted distinct-ID sets, block-written so a
// loader can seek straight to any column, with a footer describing the
// blocks. The format is deliberately raw — fixed-width little-endian IDs, no
// gob — so a 100K-table lake can spill and re-load forms with one bounded
// read per block and no decoder allocations beyond the slices themselves.
//
// Layout:
//
//	"GENTSEG1"                      8-byte header magic
//	cols[0] .. cols[ncols-1]        nrows × 4 bytes each, little-endian
//	sets[0] .. sets[ncols-1]        setLen[c] × 4 bytes each, little-endian
//	footer                          see below
//	footerLen uint32 LE, "GENTSEGF" 12-byte trailer
//
// The footer holds the table name, ncols, nrows, every set length (from
// which all block offsets derive), the table's content fingerprint
// (table.Fingerprint) and the dictionary prefix stamp (Dict.PrefixStamp) the
// IDs were assigned under. Loaders verify both stamps before trusting a
// single ID, so a segment can never be resolved against the wrong table
// contents or a diverged dictionary. Every parse error is ErrSegmentCorrupt
// — truncated, oversized or bit-flipped files fail loudly and never panic.

const (
	segHeaderMagic  = "GENTSEG1"
	segTrailerMagic = "GENTSEGF"
	// segMaxCols/segMaxRows bound footer-declared dimensions before any
	// allocation, so a corrupt footer cannot request an absurd buffer. The
	// true check is the exact file-size equation below; these caps only keep
	// the arithmetic overflow-free.
	segMaxCols = 1 << 24
	segMaxRows = 1 << 32
)

// ErrSegmentCorrupt reports a segment file that cannot be trusted: truncated,
// wrong magic, inconsistent block geometry, or stamps that fail verification.
var ErrSegmentCorrupt = errors.New("table: corrupt segment file")

// InternedSource resolves a table to its interned (columnar ID) form —
// satisfied trivially by a resident *Interned and by a *Segment that loads
// the form from disk on demand.
type InternedSource interface {
	Resolve(t *Table) (*Interned, error)
}

// Resolve returns the resident form itself: an Interned is its own source.
func (it *Interned) Resolve(t *Table) (*Interned, error) {
	if t != nil && t != it.Table {
		return it.Retargeted(t), nil
	}
	return it, nil
}

// MemBytes estimates the heap bytes the form's ID payload occupies (cells
// plus distinct sets; the Table itself is not counted) — the unit the lake's
// resident-cache budget is accounted in.
func (it *Interned) MemBytes() int64 {
	var n int64
	for c := range it.Cols {
		n += int64(len(it.Cols[c])) * 4
		n += int64(len(it.sets[c])) * 4
	}
	// Slice headers and the two spines.
	n += int64(len(it.Cols)+len(it.sets)) * 24
	return n
}

// Segment is the parsed footer of a segment file: everything needed to
// validate and lazily load the interned form, without the ID blocks
// themselves. Open with OpenSegmentFile; Resolve reads the blocks.
type Segment struct {
	path string
	// Name is the table name the segment was written for.
	Name string
	// TableFP is table.Fingerprint of the exact contents the IDs encode.
	TableFP uint64
	// DictLen and DictFP are the Dict.PrefixStamp at write time: the IDs in
	// the blocks are all ≤ DictLen and were assigned by a dictionary whose
	// first DictLen entries hash to DictFP.
	DictLen int
	DictFP  uint64

	ncols, nrows int
	setLens      []int
}

// WriteSegmentFile persists it to path via a temporary file renamed into
// place. fp is table.Fingerprint of it.Table (passed in because the lake
// already holds every table's fingerprint); dictLen and dictFP are the
// Dict.PrefixStamp the form's IDs were assigned under.
func WriteSegmentFile(path string, it *Interned, fp uint64, dictLen int, dictFP uint64) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("table: %w", err)
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("table: %w", err)
	}
	tmp := f.Name()
	err = writeSegment(f, it, fp, dictLen, dictFP)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("table: writing segment %s: %w", path, err)
	}
	return nil
}

func writeSegment(w io.Writer, it *Interned, fp uint64, dictLen int, dictFP uint64) error {
	if _, err := io.WriteString(w, segHeaderMagic); err != nil {
		return err
	}
	block := func(ids []uint32) error {
		buf := make([]byte, len(ids)*4)
		for i, id := range ids {
			binary.LittleEndian.PutUint32(buf[i*4:], id)
		}
		_, err := w.Write(buf)
		return err
	}
	for _, col := range it.Cols {
		if err := block(col); err != nil {
			return err
		}
	}
	for _, set := range it.sets {
		if err := block(set); err != nil {
			return err
		}
	}
	footer := appendSegFooter(nil, it, fp, dictLen, dictFP)
	if _, err := w.Write(footer); err != nil {
		return err
	}
	var trailer [12]byte
	binary.LittleEndian.PutUint32(trailer[:4], uint32(len(footer)))
	copy(trailer[4:], segTrailerMagic)
	_, err := w.Write(trailer[:])
	return err
}

func appendSegFooter(b []byte, it *Interned, fp uint64, dictLen int, dictFP uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(it.Table.Name)))
	b = append(b, it.Table.Name...)
	b = binary.AppendUvarint(b, uint64(len(it.Cols)))
	b = binary.AppendUvarint(b, uint64(len(it.Table.Rows)))
	for _, set := range it.sets {
		b = binary.AppendUvarint(b, uint64(len(set)))
	}
	b = binary.LittleEndian.AppendUint64(b, fp)
	b = binary.AppendUvarint(b, uint64(dictLen))
	b = binary.LittleEndian.AppendUint64(b, dictFP)
	return b
}

// OpenSegmentFile reads and validates a segment file's footer — not the ID
// blocks — and returns its description. Any structural inconsistency reports
// ErrSegmentCorrupt.
func OpenSegmentFile(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	seg, err := readSegmentMeta(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrSegmentCorrupt, path, err)
	}
	seg.path = path
	return seg, nil
}

// readSegmentMeta parses the header, trailer and footer of a segment of the
// given size, verifying the exact file-size equation the block geometry
// implies.
func readSegmentMeta(r io.ReaderAt, size int64) (*Segment, error) {
	if size < int64(len(segHeaderMagic))+12 {
		return nil, errors.New("file shorter than header and trailer")
	}
	var head [8]byte
	if _, err := r.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	if string(head[:]) != segHeaderMagic {
		return nil, errors.New("bad header magic")
	}
	var trailer [12]byte
	if _, err := r.ReadAt(trailer[:], size-12); err != nil {
		return nil, err
	}
	if string(trailer[4:]) != segTrailerMagic {
		return nil, errors.New("bad trailer magic")
	}
	footerLen := int64(binary.LittleEndian.Uint32(trailer[:4]))
	if footerLen <= 0 || footerLen > size-12-int64(len(segHeaderMagic)) {
		return nil, errors.New("footer length out of range")
	}
	footer := make([]byte, footerLen)
	if _, err := r.ReadAt(footer, size-12-footerLen); err != nil {
		return nil, err
	}

	uvar := func() (uint64, error) {
		v, n := binary.Uvarint(footer)
		if n <= 0 {
			return 0, errors.New("truncated footer varint")
		}
		footer = footer[n:]
		return v, nil
	}
	nameLen, err := uvar()
	if err != nil {
		return nil, err
	}
	if nameLen > uint64(len(footer)) {
		return nil, errors.New("name length exceeds footer")
	}
	seg := &Segment{Name: string(footer[:nameLen])}
	footer = footer[nameLen:]
	ncols, err := uvar()
	if err != nil {
		return nil, err
	}
	nrows, err := uvar()
	if err != nil {
		return nil, err
	}
	if ncols > segMaxCols || nrows > segMaxRows {
		return nil, errors.New("dimensions out of range")
	}
	seg.ncols, seg.nrows = int(ncols), int(nrows)
	seg.setLens = make([]int, ncols)
	var setTotal uint64
	for c := range seg.setLens {
		n, err := uvar()
		if err != nil {
			return nil, err
		}
		if n > nrows {
			return nil, errors.New("distinct set longer than column")
		}
		seg.setLens[c] = int(n)
		setTotal += n
	}
	if len(footer) < 8 {
		return nil, errors.New("truncated footer tail")
	}
	seg.TableFP = binary.LittleEndian.Uint64(footer)
	footer = footer[8:]
	dictLen, err := uvar()
	if err != nil {
		return nil, err
	}
	if dictLen > 1<<32 {
		return nil, errors.New("dictionary length out of range")
	}
	seg.DictLen = int(dictLen)
	if len(footer) != 8 {
		return nil, errors.New("footer tail length mismatch")
	}
	seg.DictFP = binary.LittleEndian.Uint64(footer)

	want := int64(len(segHeaderMagic)) + int64(ncols)*int64(nrows)*4 +
		int64(setTotal)*4 + footerLen + 12
	if want != size {
		return nil, fmt.Errorf("file size %d does not match geometry %d", size, want)
	}
	return seg, nil
}

// Resolve reads the segment's ID blocks and binds them to t, which must have
// the segment's dimensions (the caller is responsible for checking the
// content fingerprint and dictionary stamp first — SegmentStore does both).
// The file is opened, block-read and closed within the call, so resolving
// 100K tables never holds 100K descriptors.
func (s *Segment) Resolve(t *Table) (*Interned, error) {
	if t == nil {
		return nil, fmt.Errorf("%w: %s: nil table", ErrSegmentCorrupt, s.path)
	}
	if len(t.Cols) != s.ncols || len(t.Rows) != s.nrows {
		return nil, fmt.Errorf("%w: %s: table %s is %dx%d, segment is %dx%d",
			ErrSegmentCorrupt, s.path, t.Name, len(t.Cols), len(t.Rows), s.ncols, s.nrows)
	}
	f, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	defer f.Close()

	maxID := uint32(s.DictLen)
	readBlock := func(off int64, n int, sorted bool) ([]uint32, error) {
		buf := make([]byte, n*4)
		if _, err := f.ReadAt(buf, off); err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrSegmentCorrupt, s.path, err)
		}
		ids := make([]uint32, n)
		prev := uint32(0)
		for i := range ids {
			id := binary.LittleEndian.Uint32(buf[i*4:])
			if id > maxID {
				return nil, fmt.Errorf("%w: %s: ID %d beyond stamped dictionary length %d",
					ErrSegmentCorrupt, s.path, id, s.DictLen)
			}
			if sorted && (id <= prev || id == NullID) {
				return nil, fmt.Errorf("%w: %s: distinct set not strictly increasing",
					ErrSegmentCorrupt, s.path)
			}
			ids[i] = id
			prev = id
		}
		return ids, nil
	}

	it := &Interned{
		Table: t,
		Cols:  make([][]uint32, s.ncols),
		sets:  make([][]uint32, s.ncols),
	}
	off := int64(len(segHeaderMagic))
	for c := 0; c < s.ncols; c++ {
		ids, err := readBlock(off, s.nrows, false)
		if err != nil {
			return nil, err
		}
		it.Cols[c] = ids
		off += int64(s.nrows) * 4
	}
	for c := 0; c < s.ncols; c++ {
		ids, err := readBlock(off, s.setLens[c], true)
		if err != nil {
			return nil, err
		}
		it.sets[c] = ids
		off += int64(s.setLens[c]) * 4
	}
	return it, nil
}
