package table

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestDictInternAssignsDenseStableIDs(t *testing.T) {
	d := NewDict()
	a := d.InternValue(S("alpha"))
	b := d.InternValue(N(42))
	c := d.InternValue(Label(7))
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("dense assignment broken: got %d, %d, %d", a, b, c)
	}
	if d.InternValue(S("alpha")) != a || d.InternValue(N(42)) != b || d.InternValue(Label(7)) != c {
		t.Error("re-interning must return the original ID")
	}
	if d.InternValue(Null) != NullID {
		t.Error("null must intern to NullID")
	}
	if got, ok := d.LookupValue(S("alpha")); !ok || got != a {
		t.Errorf("LookupValue(alpha) = %d, %v", got, ok)
	}
	if _, ok := d.LookupValue(S("never seen")); ok {
		t.Error("LookupValue must miss unseen values")
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
}

// TestDictMatchesKeyEquivalence pins the contract that ID equality is
// Value.Key equality, including the cross-kind classes: numeric-text strings
// collapse onto numbers, ±0 share an entry, all NaNs share an entry.
func TestDictMatchesKeyEquivalence(t *testing.T) {
	vals := []Value{
		S("x"), S("1"), S("1.0"), S("01"), N(1), N(1.5), S("1.5"),
		N(0), N(math.Copysign(0, -1)), S("-0"), S("0"),
		N(math.NaN()), N(math.Inf(1)),
		Label(1), Label(2), S("0x1p4"), S("16"), N(16), S("1_000"), S("1000"),
	}
	d := NewDict()
	ids := make([]uint32, len(vals))
	for i, v := range vals {
		ids[i] = d.InternValue(v)
	}
	for i, v := range vals {
		for j, w := range vals {
			if (ids[i] == ids[j]) != (v.Key() == w.Key()) {
				t.Errorf("ID equivalence diverged from Key: %v (id %d, key %q) vs %v (id %d, key %q)",
					v, ids[i], v.Key(), w, ids[j], w.Key())
			}
		}
	}
	// LookupKey must agree with InternValue through the canonical key form.
	for i, v := range vals {
		if got, ok := d.LookupKey(v.Key()); !ok || got != ids[i] {
			t.Errorf("LookupKey(%q) = %d, %v; want %d", v.Key(), got, ok, ids[i])
		}
	}
}

// TestDictConcurrentIntern hammers one dictionary from many goroutines (run
// under -race): every goroutine must observe the same ID for the same value,
// and the ID space must stay dense.
func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict()
	const workers = 8
	const perWorker = 400
	got := make([][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint32, perWorker)
			for i := 0; i < perWorker; i++ {
				// Heavy overlap across workers, mixed kinds.
				switch i % 3 {
				case 0:
					ids[i] = d.InternValue(S(fmt.Sprintf("v%d", i%50)))
				case 1:
					ids[i] = d.InternValue(N(float64(i % 40)))
				default:
					ids[i] = d.InternValue(Label(int64(i % 30)))
				}
				if v, ok := d.LookupValue(S(fmt.Sprintf("v%d", i%50))); ok && v == NullID {
					t.Error("NullID assigned to a real value")
				}
			}
			got[w] = ids
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range got[w] {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d saw ID %d for slot %d, worker 0 saw %d",
					w, got[w][i], i, got[0][i])
			}
		}
	}
	n := d.Len()
	seen := make(map[uint32]bool)
	for _, ids := range got {
		for _, id := range ids {
			if id == NullID || int(id) > n {
				t.Fatalf("ID %d outside dense range 1..%d", id, n)
			}
			seen[id] = true
		}
	}
	if len(seen) != n {
		t.Errorf("dictionary has %d entries but %d distinct IDs were handed out", n, len(seen))
	}
}

func TestDictSnapshotRoundTrip(t *testing.T) {
	d := NewDict()
	vals := []Value{S("a"), N(2.5), Label(9), S("7"), S("weird\x01bytes"), N(math.NaN())}
	want := make([]uint32, len(vals))
	for i, v := range vals {
		want[i] = d.InternValue(v)
	}
	restored, err := NewDictFromSnapshot(d.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		got, ok := restored.LookupValue(v)
		if !ok || got != want[i] {
			t.Errorf("restored LookupValue(%v) = %d, %v; want %d", v, got, ok, want[i])
		}
	}
	if !restored.PrefixOf(d) || !d.PrefixOf(restored) {
		t.Error("snapshot restore must be mutually prefix-compatible")
	}
	restoredThenGrown, _ := NewDictFromSnapshot(d.Snapshot())
	d.InternValue(S("later"))
	if !restoredThenGrown.PrefixOf(d) {
		t.Error("snapshot must stay a prefix of the grown original")
	}
	if d.PrefixOf(restoredThenGrown) {
		t.Error("grown dictionary is not a prefix of its old snapshot")
	}
	if _, err := NewDictFromSnapshot([]DictEntry{{Kind: KindString, Str: "x"}, {Kind: KindString, Str: "x"}}); err == nil {
		t.Error("duplicate snapshot entries must be rejected")
	}
}

func TestInternTableAndColumnIDs(t *testing.T) {
	tab := New("t", "a", "b")
	tab.AddRow(S("x"), N(1))
	tab.AddRow(S("y"), Null)
	tab.AddRow(S("x"), N(2))
	d := NewDict()
	it := InternTable(d, tab)
	if it.Cols[0][0] != it.Cols[0][2] {
		t.Error("same value must get the same ID")
	}
	if it.Cols[1][1] != NullID {
		t.Error("null cell must be NullID")
	}
	ids := it.ColumnIDs(0)
	if len(ids) != 2 {
		t.Fatalf("column 0 has %d distinct IDs, want 2", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("ColumnIDs must be sorted and distinct")
		}
	}
	if got := it.ColumnIDs(1); len(got) != 2 {
		t.Errorf("column 1 has %d distinct non-null IDs, want 2", len(got))
	}
	// Distinct counts must agree with the string-set reference.
	for c := range tab.Cols {
		if len(it.ColumnIDs(c)) != len(tab.ColumnSet(c)) {
			t.Errorf("column %d: ID set size %d != string set size %d",
				c, len(it.ColumnIDs(c)), len(tab.ColumnSet(c)))
		}
	}
}

func TestIDSetOps(t *testing.T) {
	a := []uint32{1, 3, 5, 9}
	b := []uint32{3, 4, 5}
	if got := IntersectIDs(a, b); got != 2 {
		t.Errorf("IntersectIDs = %d, want 2", got)
	}
	if !ContainsIDs(a, []uint32{3, 9}) || ContainsIDs(a, b) || !ContainsIDs(a, nil) {
		t.Error("ContainsIDs wrong")
	}
	if !HasID(a, 5) || HasID(a, 4) {
		t.Error("HasID wrong")
	}
}

func TestIDKeyHelpers(t *testing.T) {
	d := NewDict()
	r := Row{S("k"), N(1), S("other")}
	k1, ok := InternIDKey(d, r, []int{0, 1})
	if !ok {
		t.Fatal("InternIDKey failed on a non-null key")
	}
	k2, ok := LookupIDKey(d, r, []int{0, 1})
	if !ok || k1 != k2 {
		t.Fatal("LookupIDKey must find what InternIDKey interned")
	}
	if _, ok := InternIDKey(d, Row{Null, N(1)}, []int{0, 1}); ok {
		t.Error("null key cell must fail")
	}
	if _, ok := LookupIDKey(d, Row{S("unseen"), N(1)}, []int{0, 1}); ok {
		t.Error("unseen key value must fail lookup")
	}
}
