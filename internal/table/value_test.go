package table

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	tests := []struct {
		raw  string
		want Value
	}{
		{"", Null},
		{"hello", S("hello")},
		{"27", Value{Kind: KindNumber, Str: "27", Num: 27}},
		{"-3.5", Value{Kind: KindNumber, Str: "-3.5", Num: -3.5}},
		{"1e3", Value{Kind: KindNumber, Str: "1e3", Num: 1000}},
		{"NaN", S("NaN")},
		{"Inf", S("Inf")},
		{"12 Main St", S("12 Main St")},
	}
	for _, tc := range tests {
		if got := Parse(tc.raw); got != tc.want {
			t.Errorf("Parse(%q) = %#v, want %#v", tc.raw, got, tc.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !N(1).Equal(Parse("1.0")) {
		t.Error("numbers with different spellings should be equal")
	}
	if !S("27").Equal(N(27)) {
		t.Error("string '27' should equal number 27 (syntactic match)")
	}
	if Null.Equal(S("")) {
		t.Error("null must not equal any string")
	}
	if !Null.Equal(Null) {
		t.Error("null equals null")
	}
	if Label(1).Equal(Label(2)) {
		t.Error("distinct labels must differ")
	}
	if !Label(7).Equal(Label(7)) {
		t.Error("same label must be equal")
	}
	if Label(1).Equal(Null) || Null.Equal(Label(1)) {
		t.Error("labels are non-null values")
	}
	if S("abc").Equal(S("abd")) {
		t.Error("different strings must differ")
	}
}

func TestValueIsNull(t *testing.T) {
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	for _, v := range []Value{S(""), S("x"), N(0), Label(0)} {
		if v.IsNull() {
			t.Errorf("%#v should not be null", v)
		}
	}
}

func TestValueString(t *testing.T) {
	if got := Null.String(); got != "—" {
		t.Errorf("Null.String() = %q", got)
	}
	if got := N(2.5).String(); got != "2.5" {
		t.Errorf("N(2.5).String() = %q", got)
	}
	if got := Label(3).String(); got != "⟨L3⟩" {
		t.Errorf("Label(3).String() = %q", got)
	}
}

// randomValue draws a value from a small domain so collisions are common —
// exactly what the property tests need.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return N(float64(r.Intn(6)))
	case 2:
		return S(string(rune('a' + r.Intn(6))))
	case 3:
		return S("shared")
	default:
		return N(float64(r.Intn(3)) + 0.5)
	}
}

type valuePair struct{ A, B Value }

// Generate implements quick.Generator for valuePair.
func (valuePair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valuePair{randomValue(r), randomValue(r)})
}

func TestValueKeyAgreesWithEqual(t *testing.T) {
	// Property: Equal(a, b) exactly when canonical keys match.
	prop := func(p valuePair) bool {
		return p.A.Equal(p.B) == (p.A.Key() == p.B.Key())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValueCompareIsOrdering(t *testing.T) {
	// Property: Compare is antisymmetric and consistent with Equal for
	// same-kind values.
	prop := func(p valuePair) bool {
		ab, ba := p.A.Compare(p.B), p.B.Compare(p.A)
		if (ab < 0) != (ba > 0) || (ab == 0) != (ba == 0) {
			return false
		}
		if p.A.Kind == p.B.Kind && p.A.Equal(p.B) != (ab == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValueTextRoundTrip(t *testing.T) {
	for _, v := range []Value{Null, S("x y"), N(42), N(-1.25)} {
		got := Parse(v.Text())
		if !got.Equal(v) {
			t.Errorf("Parse(Text(%v)) = %v, want equal", v, got)
		}
	}
}
