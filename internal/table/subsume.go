package table

// Subsumes reports whether t1 subsumes t2 (same schema assumed): wherever
// both are non-null they agree, t1 is non-null everywhere t2 is, and t1 has
// strictly more non-null cells.
func Subsumes(t1, t2 Row) bool {
	strict := false
	for i := range t1 {
		switch {
		case t2[i].IsNull():
			if !t1[i].IsNull() {
				strict = true
			}
		case t1[i].IsNull():
			return false // t2 has a value where t1 has none
		case !t1[i].Equal(t2[i]):
			return false
		}
	}
	return strict
}

// Subsume applies β: repeatedly discard tuples subsumed by another tuple, and
// collapse exact duplicates to one copy. The result contains no subsumable
// pair.
func Subsume(t *Table) *Table {
	out := New(t.Name, t.Cols...)
	out.Key = append([]int(nil), t.Key...)
	if len(t.Rows) == 0 {
		return out
	}

	// Deduplicate first; β removes duplicates implicitly (a duplicate is the
	// degenerate "equal on all shared non-nulls, nothing extra" case the
	// paper folds into minimal form).
	uniq := make([]Row, 0, len(t.Rows))
	seen := make(map[string]bool, len(t.Rows))
	for _, r := range t.Rows {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, r.Clone())
		}
	}

	// Bucket rows by non-null count, descending: a row can only be subsumed
	// by a row with strictly more non-nulls, so each row need only be checked
	// against richer rows.
	alive := make([]bool, len(uniq))
	for i := range alive {
		alive[i] = true
	}
	counts := make([]int, len(uniq))
	for i, r := range uniq {
		counts[i] = r.NonNullCount()
	}
	for i := range uniq {
		if !alive[i] {
			continue
		}
		for j := range uniq {
			if i == j || !alive[j] || counts[j] <= counts[i] {
				continue
			}
			if Subsumes(uniq[j], uniq[i]) {
				alive[i] = false
				break
			}
		}
	}
	for i, r := range uniq {
		if alive[i] {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}
