package table

import "testing"

func TestProject(t *testing.T) {
	s := figSource()
	p := s.Project("Name", "Age")
	if len(p.Cols) != 2 || p.Cols[0] != "Name" || p.Cols[1] != "Age" {
		t.Fatalf("bad projected schema: %v", p.Cols)
	}
	if !mustRows(p,
		Row{S("Smith"), N(27)},
		Row{S("Brown"), N(24)},
		Row{S("Wang"), N(32)},
	) {
		t.Errorf("bad projection rows:\n%s", p)
	}
	if len(p.Key) != 0 {
		t.Error("key must be dropped when key columns are projected out")
	}

	keep := s.Project("ID", "Name")
	if len(keep.Key) != 1 || keep.Cols[keep.Key[0]] != "ID" {
		t.Error("key must be preserved when key columns survive")
	}

	// Unknown columns are skipped silently.
	if got := s.Project("Name", "missing"); len(got.Cols) != 1 {
		t.Error("unknown projected column should be skipped")
	}
}

func TestSelect(t *testing.T) {
	s := figSource()
	young := s.Select(NumCompare("Age", "<", 30))
	if len(young.Rows) != 2 {
		t.Errorf("Age<30 selected %d rows, want 2", len(young.Rows))
	}
	male := s.Select(ColEquals("Gender", S("Male")))
	if len(male.Rows) != 1 || !male.Rows[0][1].Equal(S("Brown")) {
		t.Errorf("Gender=Male wrong: %s", male)
	}
	// Null never satisfies equality selection.
	null := s.Select(ColEquals("Gender", Null))
	if len(null.Rows) != 1 {
		// Smith's Gender is Null and Null.Equal(Null) is true by value
		// equality; selection on an explicit Null constant finds it.
		t.Errorf("explicit null selection found %d rows", len(null.Rows))
	}
	in := s.Select(ColIn("Name", map[string]bool{S("Wang").Key(): true}))
	if len(in.Rows) != 1 || !in.Rows[0][1].Equal(S("Wang")) {
		t.Errorf("ColIn wrong: %s", in)
	}
}

func TestNumCompareOperators(t *testing.T) {
	tbl := New("n", "x")
	tbl.AddRow(N(5))
	cases := []struct {
		op   string
		b    float64
		want int
	}{
		{"<", 6, 1}, {"<", 5, 0}, {"<=", 5, 1}, {">", 4, 1},
		{">=", 5, 1}, {"=", 5, 1}, {"!=", 5, 0}, {"!=", 4, 1},
	}
	for _, c := range cases {
		got := len(tbl.Select(NumCompare("x", c.op, c.b)).Rows)
		if got != c.want {
			t.Errorf("x %s %v: got %d rows, want %d", c.op, c.b, got, c.want)
		}
	}
	// Strings and nulls never match numeric comparison.
	tbl2 := New("n2", "x")
	tbl2.AddRow(S("five"))
	tbl2.AddRow(Null)
	if got := len(tbl2.Select(NumCompare("x", ">", 0)).Rows); got != 0 {
		t.Errorf("non-numeric rows matched numeric comparison: %d", got)
	}
}

func TestRename(t *testing.T) {
	b := figB().Rename(map[string]string{"Name": "Full Name"})
	if b.Cols[0] != "Full Name" || b.Cols[1] != "Age" {
		t.Errorf("Rename wrong: %v", b.Cols)
	}
}

func TestDropDuplicates(t *testing.T) {
	tbl := New("d", "a")
	tbl.AddRow(S("x"))
	tbl.AddRow(S("x"))
	tbl.AddRow(Null)
	tbl.AddRow(Null)
	tbl.AddRow(S("y"))
	got := tbl.DropDuplicates()
	if len(got.Rows) != 3 {
		t.Errorf("DropDuplicates left %d rows, want 3", len(got.Rows))
	}
}

func TestPadNullColumns(t *testing.T) {
	b := figB().PadNullColumns([]string{"Name", "Gender", "Status"})
	if len(b.Cols) != 4 {
		t.Fatalf("padded to %v", b.Cols)
	}
	for _, r := range b.Rows {
		if !r[2].IsNull() || !r[3].IsNull() {
			t.Error("padded cells must be null")
		}
	}
	same := figB().PadNullColumns([]string{"Name"})
	if len(same.Cols) != 2 {
		t.Error("no padding needed, schema changed anyway")
	}
}

func TestReorderCols(t *testing.T) {
	s := figSource()
	r, err := s.ReorderCols([]string{"Name", "ID", "Education Level", "Gender", "Age"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cols[0] != "Name" || r.Cols[1] != "ID" {
		t.Errorf("reorder wrong: %v", r.Cols)
	}
	if !r.Rows[0][1].Equal(N(0)) || !r.Rows[0][0].Equal(S("Smith")) {
		t.Error("values did not move with their columns")
	}
	if _, err := s.ReorderCols([]string{"nope"}); err == nil {
		t.Error("reorder to unknown column should fail")
	}
}
