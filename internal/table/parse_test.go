package table

import "testing"

// TestParseRejectsGoOnlyNumberSpellings pins the decimal-text contract:
// spellings only Go's ParseFloat understands are not numbers under the
// paper's syntactic equality and must stay strings.
func TestParseRejectsGoOnlyNumberSpellings(t *testing.T) {
	rejected := []string{
		"0x1p4", "0X1P-2", "0x10", // hex floats / hex digits
		"1_000", "1_0.5", "1e1_0", // digit-separator underscores
		"inf", "Inf", "+inf", "-Inf", "nan", "NaN", // words
	}
	for _, raw := range rejected {
		if v := Parse(raw); v.Kind != KindString {
			t.Errorf("Parse(%q) = kind %d, want KindString", raw, v.Kind)
		}
		// Key must classify them the same way — no collision with the
		// number they would parse to.
		if k := S(raw).Key(); k[0] != 's' {
			t.Errorf("S(%q).Key() = %q, want a string key", raw, k)
		}
	}
	accepted := map[string]float64{
		"42":      42,
		"-3.5":    -3.5,
		"+7":      7,
		"1e5":     1e5,
		"2.5E-3":  2.5e-3,
		"1608000": 1608000,
		".5":      0.5,
	}
	for raw, want := range accepted {
		v := Parse(raw)
		if v.Kind != KindNumber || v.Num != want {
			t.Errorf("Parse(%q) = %+v, want number %v", raw, v, want)
		}
		if v.Str != raw {
			t.Errorf("Parse(%q) lost the author's spelling: %q", raw, v.Str)
		}
	}
	// Overflowing exponents stay strings (ParseFloat range error).
	if v := Parse("1e999"); v.Kind != KindString {
		t.Errorf("Parse(1e999) = kind %d, want KindString", v.Kind)
	}
}

// TestKeyEscapingMakesRowKeysInjective pins the concrete collision the old
// unescaped join allowed: cell text containing the separator could fake a
// column boundary.
func TestKeyEscapingMakesRowKeysInjective(t *testing.T) {
	a := Row{S("a\x01sb"), S("c")}
	b := Row{S("a"), S("b\x01sc")}
	if a.Key() == b.Key() {
		t.Fatal("rows with separator-embedding cells must not share a key")
	}
	if !a.Equal(a.Clone()) || a.Key() != a.Clone().Key() {
		t.Fatal("key must be stable")
	}
	for _, s := range []string{"\x00", "\x01", "\x02", "mixed\x00\x01\x02end", "plain"} {
		got, ok := keyUnescape(keyEscape(s))
		if !ok || got != s {
			t.Errorf("escape round trip broke for %q: got %q, ok=%v", s, got, ok)
		}
	}
	if _, ok := keyUnescape("\x00x"); ok {
		t.Error("malformed escape accepted")
	}
	if _, ok := keyUnescape("\x01"); ok {
		t.Error("bare separator accepted")
	}
}
