package table

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func segTestTable(name string) *Table {
	t := New(name, "city", "pop", "note")
	t.AddRow(S("Boston"), N(650000), S("hub"))
	t.AddRow(S("Worcester"), N(200000), Null)
	t.AddRow(S("Boston"), N(650000), S("dup"))
	t.AddRow(Null, N(3), S("hub"))
	return t
}

func TestSegmentRoundTrip(t *testing.T) {
	tab := segTestTable("cities")
	d := NewDict()
	it := InternTable(d, tab)
	fp := Fingerprint(tab)
	dictLen, dictFP := d.PrefixStamp()

	path := filepath.Join(t.TempDir(), "cities.seg")
	if err := WriteSegmentFile(path, it, fp, dictLen, dictFP); err != nil {
		t.Fatalf("write: %v", err)
	}
	seg, err := OpenSegmentFile(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if seg.Name != "cities" || seg.TableFP != fp || seg.DictLen != dictLen || seg.DictFP != dictFP {
		t.Fatalf("footer mismatch: %+v", seg)
	}
	got, err := seg.Resolve(tab)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if !reflect.DeepEqual(got.Cols, it.Cols) {
		t.Fatalf("cols mismatch:\n got %v\nwant %v", got.Cols, it.Cols)
	}
	for c := range tab.Cols {
		if !reflect.DeepEqual(got.ColumnIDs(c), it.ColumnIDs(c)) {
			t.Fatalf("set %d mismatch: got %v want %v", c, got.ColumnIDs(c), it.ColumnIDs(c))
		}
	}
}

func TestInternedIsItsOwnSource(t *testing.T) {
	tab := segTestTable("self")
	it := InternTable(NewDict(), tab)
	var src InternedSource = it
	got, err := src.Resolve(tab)
	if err != nil || got != it {
		t.Fatalf("Resolve = %v, %v; want the form itself", got, err)
	}
	ren := tab.Clone()
	ren.Name = "renamed"
	got, err = src.Resolve(ren)
	if err != nil || got.Table != ren {
		t.Fatalf("Resolve(renamed) = %+v, %v; want retargeted form", got, err)
	}
}

func TestSegmentStoreRoundTripAndVerification(t *testing.T) {
	st, err := NewSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tab := segTestTable("t one/with:odd name")
	d := NewDict()
	it := InternTable(d, tab)
	fp := Fingerprint(tab)
	if err := st.Write(it, fp, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Idempotent re-write (same content) must succeed and still load.
	if err := st.Write(it, fp, d); err != nil {
		t.Fatalf("re-write: %v", err)
	}
	// The dictionary growing afterwards must not invalidate the stamp.
	d.InternValue(S("later value"))
	got, err := st.Load(tab, fp, d)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(got.Cols, it.Cols) {
		t.Fatalf("cols mismatch after reload")
	}

	// Changed contents: the stored fingerprint no longer matches.
	edited := segTestTable(tab.Name)
	edited.AddRow(S("Springfield"), N(150000), Null)
	if _, err := st.Load(edited, Fingerprint(edited), d); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("load of changed table = %v, want ErrSegmentCorrupt", err)
	}

	// A foreign dictionary (different assignment history) fails the stamp.
	foreign := NewDict()
	foreign.InternValue(S("unrelated"))
	if _, err := st.Load(tab, fp, foreign); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("load under foreign dict = %v, want ErrSegmentCorrupt", err)
	}
}

func TestSegmentCorruptionIsTypedError(t *testing.T) {
	dir := t.TempDir()
	tab := segTestTable("corrupt")
	d := NewDict()
	it := InternTable(d, tab)
	fp := Fingerprint(tab)
	dictLen, dictFP := d.PrefixStamp()
	path := filepath.Join(dir, "corrupt.seg")
	if err := WriteSegmentFile(path, it, fp, dictLen, dictFP); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string][]byte{
		"truncated head":    raw[:4],
		"truncated trailer": raw[:len(raw)-5],
		"no data":           raw[len(raw)-12:],
		"bad header magic":  append([]byte("XXXXXXXX"), raw[8:]...),
		"bad trailer magic": append(append([]byte{}, raw[:len(raw)-8]...), []byte("XXXXXXXX")...),
		"empty":             {},
	}
	// Footer-length field pointing past the file.
	huge := append([]byte{}, raw...)
	huge[len(huge)-12] = 0xff
	huge[len(huge)-11] = 0xff
	mutations["oversized footer"] = huge
	for name, data := range mutations {
		p := filepath.Join(dir, "m.seg")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSegmentFile(p); !errors.Is(err, ErrSegmentCorrupt) && err == nil {
			t.Errorf("%s: open succeeded, want error", name)
		}
	}
	// A flipped ID that lands beyond the stamped dictionary length must fail
	// at Resolve time.
	bad := append([]byte{}, raw...)
	bad[9] = 0xff // inside the first column block
	bad[10] = 0xff
	bad[11] = 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegmentFile(path)
	if err != nil {
		t.Fatalf("open after in-block flip: %v (geometry unchanged, footer must still parse)", err)
	}
	if _, err := seg.Resolve(tab); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("resolve with out-of-dict ID = %v, want ErrSegmentCorrupt", err)
	}
}

func TestDictPrefixStamp(t *testing.T) {
	d := NewDict()
	d.InternValue(S("a"))
	d.InternValue(N(7))
	n, fp := d.PrefixStamp()
	if n != 2 {
		t.Fatalf("PrefixStamp n = %d, want 2", n)
	}
	if !d.VerifyPrefixStamp(n, fp) {
		t.Fatal("fresh stamp does not verify")
	}
	d.InternValue(S("b"))
	if !d.VerifyPrefixStamp(n, fp) {
		t.Fatal("stamp must survive dictionary growth")
	}
	if d.VerifyPrefixStamp(n, fp^1) {
		t.Fatal("wrong fingerprint verified")
	}
	if d.VerifyPrefixStamp(99, fp) {
		t.Fatal("stamp beyond dictionary length verified")
	}
	// A dictionary with a different entry at position 2 must not verify.
	o := NewDict()
	o.InternValue(S("a"))
	o.InternValue(N(8))
	if o.VerifyPrefixStamp(n, fp) {
		t.Fatal("diverged dictionary verified the stamp")
	}
	// A restored snapshot must verify (same assignment history).
	r, err := NewDictFromSnapshot(d.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !r.VerifyPrefixStamp(n, fp) {
		t.Fatal("snapshot-restored dictionary failed the stamp")
	}
}

// FuzzSegmentFooter pins the segment parser to the satellite contract:
// arbitrary bytes on disk either parse as a structurally consistent segment
// or fail with a clean error — never a panic, never an absurd allocation.
func FuzzSegmentFooter(f *testing.F) {
	tab := segTestTable("fuzzseed")
	d := NewDict()
	it := InternTable(d, tab)
	dictLen, dictFP := d.PrefixStamp()
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.seg")
	if err := WriteSegmentFile(seedPath, it, Fingerprint(tab), dictLen, dictFP); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte(segHeaderMagic + segTrailerMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "f.seg")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		seg, err := OpenSegmentFile(p)
		if err != nil {
			return // clean rejection is the contract
		}
		// A parsed segment must be internally consistent enough to attempt a
		// resolve against a dimension-matching table without panicking.
		if seg.ncols > 64 || seg.nrows > 4096 {
			return
		}
		tt := New(seg.Name + "x")
		tt.Cols = make([]string, seg.ncols)
		for c := range tt.Cols {
			tt.Cols[c] = "c"
		}
		for r := 0; r < seg.nrows; r++ {
			tt.Rows = append(tt.Rows, make(Row, seg.ncols))
		}
		seg.Resolve(tt) //nolint:errcheck // only panics matter here
	})
}
