package table

import "testing"

func TestMineKeySingleColumn(t *testing.T) {
	s := figSource()
	s.Key = nil
	key := MineKey(s, 3)
	if len(key) != 1 || s.Cols[key[0]] != "ID" {
		t.Errorf("mined key %v, want [ID]", key)
	}
}

func TestMineKeyMultiColumn(t *testing.T) {
	tbl := New("t", "city", "year", "pop")
	tbl.AddRow(S("Boston"), N(2020), N(600))
	tbl.AddRow(S("Boston"), N(2021), N(610))
	tbl.AddRow(S("Worcester"), N(2020), N(180))
	// pop is unique, so arity-1 mining finds it first; restrict to
	// non-numeric behavior by duplicating a pop value.
	tbl.AddRow(S("Worcester"), N(2021), N(600))
	key := MineKey(tbl, 2)
	if len(key) != 2 {
		t.Fatalf("mined key %v, want a 2-column key", key)
	}
	if tbl.Cols[key[0]] != "city" || tbl.Cols[key[1]] != "year" {
		t.Errorf("mined key %v, want [city year]", key)
	}
}

func TestMineKeyRejectsNullKeys(t *testing.T) {
	tbl := New("t", "a", "b")
	tbl.AddRow(Null, S("x"))
	tbl.AddRow(S("v"), S("y"))
	key := MineKey(tbl, 1)
	if len(key) != 1 || tbl.Cols[key[0]] != "b" {
		t.Errorf("mined key %v, want [b] (a contains a null)", key)
	}
}

func TestMineKeyNone(t *testing.T) {
	tbl := New("t", "a")
	tbl.AddRow(S("x"))
	tbl.AddRow(S("x"))
	if key := MineKey(tbl, 1); key != nil {
		t.Errorf("mined key %v from a duplicate column", key)
	}
	if key := MineKey(New("empty", "a"), 1); key != nil {
		t.Error("empty table has no key")
	}
}
