// Package table implements the relational substrate Gen-T is built on: cell
// values (including the labeled nulls used by table integration), tables with
// optional keys, a CSV codec, and the full set of integration operators from
// the paper — projection, selection, inner/outer union, subsumption (β),
// complementation (κ), the join family, cross product and full disjunction.
//
// Value comparison is syntactic, as in the paper: two cells are equal when
// their canonical forms match. Numbers carry a parsed float alongside the
// canonical string so numeric selections remain possible.
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the kinds of cell values.
type Kind uint8

const (
	// KindNull is the SQL-style missing value ⊥.
	KindNull Kind = iota
	// KindString is an uninterpreted string value.
	KindString
	// KindNumber is a numeric value; it keeps its canonical text form so
	// equality stays syntactic.
	KindNumber
	// KindLabel is a labeled null: a value that behaves as a unique non-null
	// constant. Algorithm 2 uses labels to protect nulls the Source Table
	// shares with candidate tuples from being "filled in" erroneously.
	KindLabel
)

// Value is one table cell. The zero Value is the null ⊥.
type Value struct {
	Kind Kind
	Str  string  // canonical text for String and Number kinds
	Num  float64 // parsed number for KindNumber
	ID   int64   // label identity for KindLabel
}

// Null is the missing value ⊥.
var Null = Value{Kind: KindNull}

// S returns a string value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// N returns a number value with a canonical text form.
func N(f float64) Value {
	return Value{Kind: KindNumber, Str: formatNum(f), Num: f}
}

// Label returns a labeled null with the given identity.
func Label(id int64) Value { return Value{Kind: KindLabel, ID: id} }

func formatNum(f float64) string {
	if f == 0 {
		// Normalize -0 so Key agrees with Equal (which compares Num, where
		// -0 == 0).
		return "0"
	}
	// 'f' keeps large integers readable ("1608000", not "1.608e+06");
	// extreme magnitudes fall back to scientific notation.
	if f < 1e-4 && f > -1e-4 || f > 1e15 || f < -1e15 {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// parseDecimal parses raw as a plain decimal number: optional sign, digits
// with an optional fraction, optional decimal exponent. Spellings only Go's
// ParseFloat understands — hex floats ("0x1p4"), digit-separator underscores
// ("1_000") and the Inf/NaN words — are not numbers under the paper's
// syntactic equality and are rejected, so they stay KindString.
func parseDecimal(raw string) (float64, bool) {
	for i := 0; i < len(raw); i++ {
		switch c := raw[i]; {
		case c >= '0' && c <= '9':
		case c == '+' || c == '-' || c == '.' || c == 'e' || c == 'E':
		default:
			return 0, false
		}
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// Parse interprets raw text as a cell value: empty text is null, decimal
// numeric text becomes a number, and anything else is a string.
func Parse(raw string) Value {
	if raw == "" {
		return Null
	}
	if f, ok := parseDecimal(raw); ok {
		// Preserve the author's spelling so round-tripping is lossless.
		return Value{Kind: KindNumber, Str: raw, Num: f}
	}
	return Value{Kind: KindString, Str: raw}
}

// IsNull reports whether v is the missing value ⊥. Labeled nulls are NOT
// null: they act as unique constants until RemoveLabeledNulls reverts them.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Equal reports syntactic equality. Numbers compare by numeric value so that
// "1.0" and "1" from different generators match; strings compare exactly;
// labels compare by identity; null equals only null.
func (v Value) Equal(w Value) bool {
	switch v.Kind {
	case KindNull:
		return w.Kind == KindNull
	case KindLabel:
		return w.Kind == KindLabel && v.ID == w.ID
	case KindNumber:
		if w.Kind == KindNumber {
			return v.Num == w.Num
		}
		return w.Kind == KindString && v.Str == w.Str
	default: // KindString
		if w.Kind == KindString {
			return v.Str == w.Str
		}
		return w.Kind == KindNumber && v.Str == w.Str
	}
}

// Key returns a canonical form usable as a map key; distinct keys imply
// unequal values and vice versa (numeric-text strings share the matching
// number's key, mirroring Equal's cross-kind text comparison).
//
// Key output never contains a bare \x00, \x01 or \x02 outside the leading
// kind marker: string bodies are escaped (see keyEscape), so keys can be
// joined with \x01 into row keys (Row.Key, Table.RowKey) and with \x02 into
// slot keys without two different rows ever building the same joined string.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "\x00N"
	case KindLabel:
		return "\x00L" + strconv.FormatInt(v.ID, 10)
	case KindNumber:
		return "\x00#" + formatNum(v.Num)
	default:
		if f, ok := parseDecimal(v.Str); ok {
			return "\x00#" + formatNum(f)
		}
		return "s" + keyEscape(v.Str)
	}
}

// keyEscape rewrites the control bytes reserved by key joining — \x00 (kind
// marker), \x01 (row-key separator), \x02 (slot separator) — as \x00-led
// pairs, making Value.Key injective under \x01-joins. Almost every real
// string has none and is returned unchanged.
func keyEscape(s string) string {
	i := 0
	for i < len(s) && s[i] > '\x02' {
		i++
	}
	if i == len(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	b.WriteString(s[:i])
	for ; i < len(s); i++ {
		if c := s[i]; c <= '\x02' {
			b.WriteByte('\x00')
			b.WriteByte('0' + c)
		} else {
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// keyUnescape inverts keyEscape; malformed escapes (including bare control
// bytes, which escaped bodies never contain) return false.
func keyUnescape(s string) (string, bool) {
	i := 0
	for i < len(s) && s[i] > '\x02' {
		i++
	}
	if i == len(s) {
		return s, true
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c > '\x02' {
			b.WriteByte(c)
			continue
		}
		if c != '\x00' || i+1 >= len(s) || s[i+1] < '0' || s[i+1] > '2' {
			return "", false
		}
		i++
		b.WriteByte(s[i] - '0')
	}
	return b.String(), true
}

// Compare orders values deterministically: nulls first, then numbers by
// value, then strings lexicographically, then labels by identity.
func (v Value) Compare(w Value) int {
	r := func(k Kind) int {
		switch k {
		case KindNull:
			return 0
		case KindNumber:
			return 1
		case KindString:
			return 2
		default:
			return 3
		}
	}
	if a, b := r(v.Kind), r(w.Kind); a != b {
		return a - b
	}
	switch v.Kind {
	case KindNull:
		return 0
	case KindNumber:
		switch {
		case v.Num < w.Num:
			return -1
		case v.Num > w.Num:
			return 1
		}
		return 0
	case KindLabel:
		switch {
		case v.ID < w.ID:
			return -1
		case v.ID > w.ID:
			return 1
		}
		return 0
	default:
		return strings.Compare(v.Str, w.Str)
	}
}

// String renders the value for display; nulls render as "—" like the paper's
// figures, labels as ⟨L#id⟩.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "—"
	case KindLabel:
		return fmt.Sprintf("⟨L%d⟩", v.ID)
	default:
		return v.Str
	}
}

// Text renders the value for CSV output: nulls become the empty string and
// labels are rendered with a reserved prefix (they should normally be removed
// before persisting).
func (v Value) Text() string {
	switch v.Kind {
	case KindNull:
		return ""
	case KindLabel:
		return fmt.Sprintf("\x00label:%d", v.ID)
	default:
		return v.Str
	}
}
