package table

import "sort"

// Interned is the columnar ID form of a table: every cell mapped through a
// Dict once, so the hot paths (index builds, overlap search, alignment)
// operate on dense uint32 IDs instead of re-hashing canonical strings.
// An Interned form is immutable after construction and row-aligned with its
// table: Cols[c][r] corresponds to Table.Rows[r][c], so a Rename or Clone of
// the table (which preserves row order) can keep using the same form.
type Interned struct {
	// Table is the table this form was interned from.
	Table *Table
	// Cols[c][r] is the dictionary ID of cell (r, c); NullID marks ⊥.
	Cols [][]uint32
	// sets[c] is the sorted distinct non-null ID set of column c.
	sets [][]uint32
}

// InternTable maps every cell of t through d. Labeled nulls intern like any
// other non-null value.
func InternTable(d Interner, t *Table) *Interned {
	it := &Interned{
		Table: t,
		Cols:  make([][]uint32, len(t.Cols)),
		sets:  make([][]uint32, len(t.Cols)),
	}
	for c := range t.Cols {
		it.Cols[c] = make([]uint32, len(t.Rows))
	}
	for ri, r := range t.Rows {
		for c, v := range r {
			it.Cols[c][ri] = d.InternValue(v)
		}
	}
	for c := range t.Cols {
		it.sets[c] = distinctSorted(it.Cols[c])
	}
	return it
}

// ColumnIDs returns the sorted distinct non-null IDs of column c — the ID
// analogue of Table.ColumnSet. Callers must not mutate the returned slice.
func (it *Interned) ColumnIDs(c int) []uint32 { return it.sets[c] }

// Retargeted returns an interned form with the same IDs bound to t, which
// must be cell-aligned with it.Table — e.g. a renamed shallow copy sharing
// the original's rows. No cell is re-hashed.
func (it *Interned) Retargeted(t *Table) *Interned {
	return &Interned{Table: t, Cols: it.Cols, sets: it.sets}
}

// PreInterned is a table interned against a private scratch dictionary: the
// parallel half of a deterministic two-phase lake intern. Several tables can
// pre-intern concurrently with no shared state; Merge then folds each into
// the shared dictionary serially, in lake order, reproducing exactly the IDs
// a fully serial InternTable pass would have assigned (both assign a value's
// ID at its first occurrence in the same scan order).
type PreInterned struct {
	it *Interned
	// entries is the scratch dictionary's snapshot: local ID i+1 ↔ entries[i].
	entries []DictEntry
}

// PreInternTable interns t against a fresh private dictionary.
func PreInternTable(t *Table) *PreInterned {
	local := NewDict()
	return &PreInterned{it: InternTable(local, t), entries: local.Snapshot()}
}

// Merge remaps the pre-interned form onto d — interning each distinct value
// once — and returns the final form. A PreInterned is consumed by its Merge
// and must not be reused.
func (p *PreInterned) Merge(d *Dict) *Interned {
	remap := make([]uint32, len(p.entries)+1) // remap[NullID] stays NullID
	for i, e := range p.entries {
		remap[i+1] = d.internEntry(e)
	}
	for _, col := range p.it.Cols {
		for ri, id := range col {
			col[ri] = remap[id]
		}
	}
	for c, set := range p.it.sets {
		for i, id := range set {
			set[i] = remap[id] // distinct in, distinct out: remap is injective
		}
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		p.it.sets[c] = set
	}
	return p.it
}

// distinctSorted returns the sorted distinct non-null IDs of a column.
func distinctSorted(col []uint32) []uint32 {
	out := make([]uint32, 0, len(col))
	for _, id := range col {
		if id != NullID {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, id := range out {
		if i == 0 || id != out[n-1] {
			out[n] = id
			n++
		}
	}
	return out[:n]
}

// IntersectIDs returns |a ∩ b| over two sorted distinct ID slices.
func IntersectIDs(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// ContainsIDs reports a ⊇ b over two sorted distinct ID slices.
func ContainsIDs(a, b []uint32) bool {
	i := 0
	for _, id := range b {
		for i < len(a) && a[i] < id {
			i++
		}
		if i >= len(a) || a[i] != id {
			return false
		}
		i++
	}
	return true
}

// HasID reports membership of id in a sorted distinct ID slice.
func HasID(a []uint32, id uint32) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= id })
	return i < len(a) && a[i] == id
}
