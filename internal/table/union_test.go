package table

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestInnerUnion(t *testing.T) {
	a := figB()
	b := New("b2", "Age", "Name") // permuted schema
	b.AddRow(N(40), S("Lee"))
	u := InnerUnion(a, b)
	if len(u.Cols) != 2 || len(u.Rows) != 4 {
		t.Fatalf("bad inner union: %s", u)
	}
	last := u.Rows[3]
	if !last[0].Equal(S("Lee")) || !last[1].Equal(N(40)) {
		t.Error("permuted columns not realigned")
	}
}

func TestInnerUnionPanicsOnSchemaMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InnerUnion on different schemas did not panic")
		}
	}()
	InnerUnion(figA(), figB())
}

func TestOuterUnionPaperExample(t *testing.T) {
	// Figure 5: A ⊎ B ⊎ C over the running example.
	u := OuterUnionAll([]*Table{figA(), figB(), figC()})
	want := New("w", "ID", "Name", "Education Level", "Age", "Gender")
	want.AddRow(N(0), S("Smith"), S("Bachelors"), Null, Null)
	want.AddRow(N(1), S("Brown"), Null, Null, Null)
	want.AddRow(N(2), S("Wang"), S("High School"), Null, Null)
	want.AddRow(Null, S("Smith"), Null, N(27), Null)
	want.AddRow(Null, S("Brown"), Null, N(24), Null)
	want.AddRow(Null, S("Wang"), Null, N(32), Null)
	want.AddRow(Null, S("Smith"), Null, Null, S("Male"))
	want.AddRow(Null, S("Brown"), Null, Null, S("Male"))
	want.AddRow(Null, S("Wang"), Null, Null, S("Male"))
	if !SameInstance(u, want) {
		t.Errorf("A⊎B⊎C wrong:\n%s", u)
	}
}

func TestOuterUnionSameSchemaIsInnerUnion(t *testing.T) {
	a, b := figB(), figB()
	ou := OuterUnion(a, b)
	iu := InnerUnion(a, b)
	if !SameInstance(ou, iu) {
		t.Error("⊎ on equal schemas must equal inner union")
	}
}

// randTable is a quick.Generator producing small tables over a fixed column
// pool, so generated pairs often share columns and values.
type randTable struct{ T *Table }

var colPool = []string{"k", "a", "b", "c", "d"}

func genTable(r *rand.Rand) *Table {
	ncols := 1 + r.Intn(4)
	perm := r.Perm(len(colPool))[:ncols]
	cols := make([]string, ncols)
	for i, p := range perm {
		cols[i] = colPool[p]
	}
	t := New("t", cols...)
	nrows := r.Intn(5)
	for i := 0; i < nrows; i++ {
		row := make(Row, ncols)
		for j := range row {
			row[j] = randomValue(r)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Generate implements quick.Generator.
func (randTable) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randTable{genTable(r)})
}

func TestOuterUnionCommutative(t *testing.T) {
	prop := func(a, b randTable) bool {
		return SameInstance(OuterUnion(a.T, b.T), OuterUnion(b.T, a.T))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOuterUnionAssociative(t *testing.T) {
	prop := func(a, b, c randTable) bool {
		l := OuterUnion(OuterUnion(a.T, b.T), c.T)
		r := OuterUnion(a.T, OuterUnion(b.T, c.T))
		return SameInstance(l, r)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOuterUnionPreservesRowCount(t *testing.T) {
	prop := func(a, b randTable) bool {
		return len(OuterUnion(a.T, b.T).Rows) == len(a.T.Rows)+len(b.T.Rows)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOuterUnionAllEmpty(t *testing.T) {
	if got := OuterUnionAll(nil); len(got.Rows) != 0 || len(got.Cols) != 0 {
		t.Error("outer union of nothing should be the empty table")
	}
}
