package table

import "strings"

// CommonCols returns the column names shared by a and b, in a's order.
func CommonCols(a, b *Table) []string {
	out := make([]string, 0)
	for _, c := range a.Cols {
		if b.ColIndex(c) >= 0 {
			out = append(out, c)
		}
	}
	return out
}

// joinKey builds the canonical key of r over the column indices; it returns
// "", false when any join attribute is null (nulls never join).
func joinKey(r Row, idx []int) (string, bool) {
	var b strings.Builder
	for _, i := range idx {
		if r[i].IsNull() {
			return "", false
		}
		b.WriteString(r[i].Key())
		b.WriteByte('\x01')
	}
	return b.String(), true
}

func colIndices(t *Table, cols []string) []int {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.ColIndex(c)
	}
	return idx
}

// joined lays out the result schema of a natural join: all of a's columns
// followed by b's non-shared columns.
func joinedSchema(a, b *Table, shared []string) ([]string, []int) {
	cols := append([]string(nil), a.Cols...)
	extras := make([]int, 0, len(b.Cols))
	isShared := make(map[string]bool, len(shared))
	for _, c := range shared {
		isShared[c] = true
	}
	for j, c := range b.Cols {
		if !isShared[c] {
			cols = append(cols, c)
			extras = append(extras, j)
		}
	}
	return cols, extras
}

// InnerJoin returns the natural equi-join of a and b on their shared columns.
// With no shared columns the result is empty (use CrossProduct explicitly).
func InnerJoin(a, b *Table) *Table {
	shared := CommonCols(a, b)
	cols, extras := joinedSchema(a, b, shared)
	out := New(a.Name+"⋈"+b.Name, cols...)
	if len(shared) == 0 {
		return out
	}
	ia, ib := colIndices(a, shared), colIndices(b, shared)
	index := make(map[string][]Row)
	for _, rb := range b.Rows {
		if k, ok := joinKey(rb, ib); ok {
			index[k] = append(index[k], rb)
		}
	}
	for _, ra := range a.Rows {
		k, ok := joinKey(ra, ia)
		if !ok {
			continue
		}
		for _, rb := range index[k] {
			nr := make(Row, len(cols))
			copy(nr, ra)
			for i, j := range extras {
				nr[len(a.Cols)+i] = rb[j]
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// LeftJoin returns the natural left outer join a ⟕ b.
func LeftJoin(a, b *Table) *Table {
	shared := CommonCols(a, b)
	cols, extras := joinedSchema(a, b, shared)
	out := New(a.Name+"⟕"+b.Name, cols...)
	ia, ib := colIndices(a, shared), colIndices(b, shared)
	index := make(map[string][]Row)
	if len(shared) > 0 {
		for _, rb := range b.Rows {
			if k, ok := joinKey(rb, ib); ok {
				index[k] = append(index[k], rb)
			}
		}
	}
	for _, ra := range a.Rows {
		matches := []Row(nil)
		if k, ok := joinKey(ra, ia); ok && len(shared) > 0 {
			matches = index[k]
		}
		if len(matches) == 0 {
			nr := make(Row, len(cols))
			copy(nr, ra)
			for i := len(a.Cols); i < len(cols); i++ {
				nr[i] = Null
			}
			out.Rows = append(out.Rows, nr)
			continue
		}
		for _, rb := range matches {
			nr := make(Row, len(cols))
			copy(nr, ra)
			for i, j := range extras {
				nr[len(a.Cols)+i] = rb[j]
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// FullOuterJoin returns the natural full outer join a ⟗ b.
func FullOuterJoin(a, b *Table) *Table {
	shared := CommonCols(a, b)
	cols, extras := joinedSchema(a, b, shared)
	out := New(a.Name+"⟗"+b.Name, cols...)
	ia, ib := colIndices(a, shared), colIndices(b, shared)
	index := make(map[string][]Row)
	matchedB := make(map[int]bool)
	bySlot := make(map[string][]int)
	if len(shared) > 0 {
		for bi, rb := range b.Rows {
			if k, ok := joinKey(rb, ib); ok {
				index[k] = append(index[k], rb)
				bySlot[k] = append(bySlot[k], bi)
			}
		}
	}
	for _, ra := range a.Rows {
		var matches []Row
		var slots []int
		if k, ok := joinKey(ra, ia); ok && len(shared) > 0 {
			matches, slots = index[k], bySlot[k]
		}
		if len(matches) == 0 {
			nr := make(Row, len(cols))
			copy(nr, ra)
			for i := len(a.Cols); i < len(cols); i++ {
				nr[i] = Null
			}
			out.Rows = append(out.Rows, nr)
			continue
		}
		for mi, rb := range matches {
			matchedB[slots[mi]] = true
			nr := make(Row, len(cols))
			copy(nr, ra)
			for i, j := range extras {
				nr[len(a.Cols)+i] = rb[j]
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	// Dangling b tuples: shared columns take b's values, a-only columns null.
	sharedPosInA := colIndices(a, shared)
	for bi, rb := range b.Rows {
		k, ok := joinKey(rb, ib)
		if ok && matchedB[bi] {
			continue
		}
		_ = k
		nr := make(Row, len(cols))
		for i := range nr {
			nr[i] = Null
		}
		for si, ci := range sharedPosInA {
			nr[ci] = rb[ib[si]]
		}
		for i, j := range extras {
			nr[len(a.Cols)+i] = rb[j]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// CrossProduct returns a × b; the tables must not share column names.
func CrossProduct(a, b *Table) *Table {
	cols := append(append([]string(nil), a.Cols...), b.Cols...)
	out := New(a.Name+"×"+b.Name, cols...)
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			nr := make(Row, 0, len(cols))
			nr = append(nr, ra.Clone()...)
			nr = append(nr, rb.Clone()...)
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// EstimateJoinSize estimates |a ⋈ b| on their shared columns with the
// standard formula |a|·|b| / max(V(a,C), V(b,C)); Expand uses it for edge
// weights. The second result is the number of distinct shared join values,
// used as the "covers the most source key values" signal.
func EstimateJoinSize(a, b *Table) (estimate float64, sharedValues int) {
	shared := CommonCols(a, b)
	if len(shared) == 0 || len(a.Rows) == 0 || len(b.Rows) == 0 {
		return 0, 0
	}
	ia, ib := colIndices(a, shared), colIndices(b, shared)
	da := make(map[string]bool)
	for _, r := range a.Rows {
		if k, ok := joinKey(r, ia); ok {
			da[k] = true
		}
	}
	db := make(map[string]bool)
	for _, r := range b.Rows {
		if k, ok := joinKey(r, ib); ok {
			db[k] = true
		}
	}
	common := 0
	for k := range da {
		if db[k] {
			common++
		}
	}
	maxD := len(da)
	if len(db) > maxD {
		maxD = len(db)
	}
	if maxD == 0 {
		return 0, 0
	}
	return float64(len(a.Rows)) * float64(len(b.Rows)) / float64(maxD), common
}
