package table

// SameSchema reports whether two tables have the same column-name set
// (order-insensitive), the precondition for inner union.
func SameSchema(a, b *Table) bool {
	if len(a.Cols) != len(b.Cols) {
		return false
	}
	for _, c := range a.Cols {
		if b.ColIndex(c) < 0 {
			return false
		}
	}
	return true
}

// InnerUnion returns a ∪ b for tables with equal column-name sets; b's
// columns are permuted to a's order. It panics if the schemas differ, since
// callers must check SameSchema first.
func InnerUnion(a, b *Table) *Table {
	if !SameSchema(a, b) {
		panic("table: InnerUnion on different schemas")
	}
	out := a.Clone()
	out.Name = a.Name + "∪" + b.Name
	perm := make([]int, len(a.Cols))
	for i, c := range a.Cols {
		perm[i] = b.ColIndex(c)
	}
	for _, r := range b.Rows {
		nr := make(Row, len(a.Cols))
		for i, j := range perm {
			nr[i] = r[j]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// OuterUnion returns a ⊎ b: the union of both column sets, with tuples padded
// by nulls on columns they lack. Unionable columns are matched by name (the
// paper assumes schemas are aligned so unionable columns share names). The
// operator is commutative and associative up to column order and row
// multiset.
func OuterUnion(a, b *Table) *Table {
	cols := append([]string(nil), a.Cols...)
	for _, c := range b.Cols {
		if a.ColIndex(c) < 0 {
			cols = append(cols, c)
		}
	}
	out := New(a.Name+"⊎"+b.Name, cols...)
	for _, r := range a.Rows {
		nr := make(Row, len(cols))
		copy(nr, r)
		for i := len(r); i < len(nr); i++ {
			nr[i] = Null
		}
		out.Rows = append(out.Rows, nr)
	}
	pos := make([]int, len(cols))
	for i, c := range cols {
		pos[i] = b.ColIndex(c)
	}
	for _, r := range b.Rows {
		nr := make(Row, len(cols))
		for i, j := range pos {
			if j >= 0 {
				nr[i] = r[j]
			} else {
				nr[i] = Null
			}
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// OuterUnionAll folds OuterUnion over the list; it returns an empty table for
// no input.
func OuterUnionAll(ts []*Table) *Table {
	if len(ts) == 0 {
		return New("empty")
	}
	acc := ts[0].Clone()
	for _, t := range ts[1:] {
		acc = OuterUnion(acc, t)
	}
	return acc
}
