package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ReadCSV parses a table from CSV: the first record is the header, empty
// cells are nulls, numeric-looking cells become numbers. The table name is
// taken from the argument.
func ReadCSV(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header of %s: %w", name, err)
	}
	t := New(name, header...)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV rows of %s: %w", name, err)
		}
		row := make(Row, len(header))
		for i := range header {
			if i < len(rec) {
				row[i] = Parse(rec[i])
			} else {
				row[i] = Null
			}
		}
		t.Rows = append(t.Rows, row)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteCSV renders the table as CSV with nulls as empty cells.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return fmt.Errorf("table: writing CSV header of %s: %w", t.Name, err)
	}
	rec := make([]string, len(t.Cols))
	for _, r := range t.Rows {
		for i, v := range r {
			rec[i] = v.Text()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: writing CSV row of %s: %w", t.Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSVFile reads one CSV file; the table is named after the file without
// its extension.
func LoadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return ReadCSV(f, name)
}

// SaveCSVFile writes the table to path, creating parent directories.
func SaveCSVFile(path string, t *Table) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("table: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("table: %w", err)
	}
	if err := WriteCSV(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
