package table

import (
	"testing"
	"testing/quick"
)

func TestSubsumes(t *testing.T) {
	full := Row{S("x"), N(1), S("y")}
	partial := Row{S("x"), Null, S("y")}
	other := Row{S("x"), N(2), Null}
	if !Subsumes(full, partial) {
		t.Error("full should subsume partial")
	}
	if Subsumes(partial, full) {
		t.Error("partial must not subsume full")
	}
	if Subsumes(full, full) {
		t.Error("a tuple must not subsume its duplicate (no strict gain)")
	}
	if Subsumes(full, other) || Subsumes(other, full) {
		t.Error("conflicting tuples must not subsume")
	}
	// Incomparable null patterns.
	p1 := Row{S("x"), Null}
	p2 := Row{Null, N(1)}
	if Subsumes(p1, p2) || Subsumes(p2, p1) {
		t.Error("tuples filling each other are complements, not subsumption")
	}
}

func TestSubsumeTable(t *testing.T) {
	tbl := New("t", "a", "b", "c")
	tbl.AddRow(S("x"), N(1), S("y"))
	tbl.AddRow(S("x"), Null, S("y")) // subsumed
	tbl.AddRow(S("x"), N(1), S("y")) // duplicate
	tbl.AddRow(Null, N(2), Null)     // survives
	got := Subsume(tbl)
	if !mustRows(got, Row{S("x"), N(1), S("y")}, Row{Null, N(2), Null}) {
		t.Errorf("Subsume wrong:\n%s", got)
	}
}

func TestSubsumeIdempotent(t *testing.T) {
	prop := func(a randTable) bool {
		once := Subsume(a.T)
		twice := Subsume(once)
		return EqualRows(once, twice)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSubsumeLeavesNoSubsumablePair(t *testing.T) {
	prop := func(a randTable) bool {
		got := Subsume(a.T)
		for i := range got.Rows {
			for j := range got.Rows {
				if i != j && Subsumes(got.Rows[i], got.Rows[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSubsumeRespectsLabels(t *testing.T) {
	// A labeled null is a real value: a tuple with a label is not subsumed
	// by one with a conflicting real value there.
	tbl := New("t", "a", "b")
	tbl.AddRow(S("x"), Label(1))
	tbl.AddRow(S("x"), S("v"))
	got := Subsume(tbl)
	if len(got.Rows) != 2 {
		t.Errorf("label treated as null: %s", got)
	}
	// But a plain null IS subsumed by the labeled row.
	tbl2 := New("t", "a", "b")
	tbl2.AddRow(S("x"), Label(1))
	tbl2.AddRow(S("x"), Null)
	got2 := Subsume(tbl2)
	if len(got2.Rows) != 1 || got2.Rows[0][1].Kind != KindLabel {
		t.Errorf("null not subsumed by labeled row: %s", got2)
	}
}
