package table

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestInnerJoin(t *testing.T) {
	j := InnerJoin(figA(), figB()) // shares Name
	if len(j.Cols) != 4 {
		t.Fatalf("schema: %v", j.Cols)
	}
	if !mustRows(j.Project("ID", "Name", "Age"),
		Row{N(0), S("Smith"), N(27)},
		Row{N(1), S("Brown"), N(24)},
		Row{N(2), S("Wang"), N(32)},
	) {
		t.Errorf("inner join wrong:\n%s", j)
	}
}

func TestInnerJoinNullsNeverMatch(t *testing.T) {
	a := New("a", "k", "x")
	a.AddRow(Null, S("p"))
	b := New("b", "k", "y")
	b.AddRow(Null, S("q"))
	if got := InnerJoin(a, b); len(got.Rows) != 0 {
		t.Error("null join keys matched")
	}
}

func TestInnerJoinNoSharedCols(t *testing.T) {
	if got := InnerJoin(figB(), New("z", "other")); len(got.Rows) != 0 {
		t.Error("join without shared columns must be empty")
	}
}

func TestLeftJoin(t *testing.T) {
	b := New("b", "Name", "Age")
	b.AddRow(S("Smith"), N(27)) // only Smith has an age
	j := LeftJoin(figA(), b)
	if len(j.Rows) != 3 {
		t.Fatalf("left join lost rows:\n%s", j)
	}
	var brownAge Value
	for _, r := range j.Rows {
		if r[1].Equal(S("Brown")) {
			brownAge = r[3]
		}
	}
	if !brownAge.IsNull() {
		t.Error("dangling left row must have null right attributes")
	}
}

func TestFullOuterJoin(t *testing.T) {
	a := New("a", "Name", "Age")
	a.AddRow(S("Smith"), N(27))
	a.AddRow(S("OnlyA"), N(1))
	b := New("b", "Name", "Gender")
	b.AddRow(S("Smith"), S("Male"))
	b.AddRow(S("OnlyB"), S("Female"))
	j := FullOuterJoin(a, b)
	want := New("w", "Name", "Age", "Gender")
	want.AddRow(S("Smith"), N(27), S("Male"))
	want.AddRow(S("OnlyA"), N(1), Null)
	want.AddRow(S("OnlyB"), Null, S("Female"))
	if !SameInstance(j, want) {
		t.Errorf("full outer join wrong:\n%s", j)
	}
}

func TestCrossProduct(t *testing.T) {
	a := New("a", "x")
	a.AddRow(N(1))
	a.AddRow(N(2))
	b := New("b", "y")
	b.AddRow(S("p"))
	b.AddRow(S("q"))
	cp := CrossProduct(a, b)
	if len(cp.Rows) != 4 || len(cp.Cols) != 2 {
		t.Errorf("cross product wrong:\n%s", cp)
	}
}

func TestEstimateJoinSize(t *testing.T) {
	est, shared := EstimateJoinSize(figA(), figB())
	if shared != 3 {
		t.Errorf("shared join values = %d, want 3", shared)
	}
	if est != 3 { // 3*3/max(3,3)
		t.Errorf("estimate = %v, want 3", est)
	}
	if est, shared := EstimateJoinSize(figB(), New("z", "other")); est != 0 || shared != 0 {
		t.Error("no shared columns must estimate 0")
	}
}

// keyedPair generates pairs of minimal-form tables that share exactly one
// column "k" whose values are unique within each table — the regime in which
// the representative-operator lemmas (Appendix A) hold and κ is confluent.
type keyedPair struct{ A, B *Table }

// Generate implements quick.Generator.
func (keyedPair) Generate(r *rand.Rand, _ int) reflect.Value {
	mk := func(name, extra string) *Table {
		t := New(name, "k", extra)
		n := 1 + r.Intn(4)
		perm := r.Perm(8)
		for i := 0; i < n; i++ {
			var v Value
			if r.Intn(4) == 0 {
				v = Null
			} else {
				v = S(string(rune('a' + r.Intn(5))))
			}
			t.AddRow(N(float64(perm[i])), v)
		}
		return t
	}
	return reflect.ValueOf(keyedPair{mk("A", "a"), mk("B", "b")})
}

// selectJoinable keeps tuples whose k value appears non-null in both inputs
// — the σ(T1.C = T2.C ≠ ⊥) of Lemma 12.
func selectJoinable(t, a, b *Table) *Table {
	ka := a.ColumnSet(a.ColIndex("k"))
	kb := b.ColumnSet(b.ColIndex("k"))
	both := make(map[string]bool)
	for k := range ka {
		if kb[k] {
			both[k] = true
		}
	}
	return t.Select(ColIn("k", both))
}

func TestLemma12InnerJoinViaRepresentativeOps(t *testing.T) {
	// Lemma 12: T1 ⋈ T2 = σ(T1.C = T2.C ≠ ⊥, β(κ(T1 ⊎ T2))) for tables in
	// minimal form with key-like join columns.
	prop := func(p keyedPair) bool {
		want := InnerJoin(p.A, p.B)
		got := selectJoinable(Subsume(Complement(OuterUnion(p.A, p.B))), p.A, p.B)
		return SameInstance(want, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestLemma13LeftJoinViaRepresentativeOps(t *testing.T) {
	// Lemma 13: T1 ⟕ T2 = β((T1 ⋈ T2) ⊎ T1).
	prop := func(p keyedPair) bool {
		want := LeftJoin(p.A, p.B)
		got := Subsume(OuterUnion(InnerJoin(p.A, p.B), p.A))
		return SameInstance(want, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestLemma14OuterJoinViaRepresentativeOps(t *testing.T) {
	// Lemma 14: T1 ⟗ T2 = β(β((T1 ⋈ T2) ⊎ T1) ⊎ T2).
	prop := func(p keyedPair) bool {
		want := FullOuterJoin(p.A, p.B)
		got := Subsume(OuterUnion(Subsume(OuterUnion(InnerJoin(p.A, p.B), p.A)), p.B))
		return SameInstance(want, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestLemma15CrossProductViaRepresentativeOps(t *testing.T) {
	// Lemma 15: T1 × T2 = κ-closure(π((C_T1, c), T1) ⊎ π((C_T2, c), T2)) with
	// a shared constant column c, then dropping c and the un-merged
	// originals via subsumption.
	a := New("a", "x")
	a.AddRow(N(1))
	a.AddRow(N(2))
	b := New("b", "y")
	b.AddRow(S("p"))
	b.AddRow(S("q"))

	withC := func(t *Table) *Table {
		out := New(t.Name, append(append([]string(nil), t.Cols...), "c")...)
		for _, r := range t.Rows {
			out.Rows = append(out.Rows, append(r.Clone(), S("const")))
		}
		return out
	}
	u := OuterUnion(withC(a), withC(b))
	closed, truncated := ComplementClosure(u, 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	got := closed.Project("x", "y")
	want := CrossProduct(a, b)
	if !SameInstance(got, want) {
		t.Errorf("cross product via κ-closure wrong:\n%s", got)
	}
}
