package table

import (
	"hash/fnv"
	"sync"
)

// Interner is the value-interning capability the ID-based hot paths run on.
// *Dict is the lake-wide implementation; *Overlay layers query-local
// interning over a Dict so serving a query never grows the shared
// dictionary. Implementations are safe for concurrent use and honor the same
// equivalence classes as Value.Key.
type Interner interface {
	// InternValue returns v's ID, assigning one on first sight; nulls
	// report NullID.
	InternValue(v Value) uint32
	// LookupValue returns v's ID without interning; ok is false when v's
	// value class has never been seen.
	LookupValue(v Value) (uint32, bool)
}

// overlayIDBit marks overlay-local IDs. The shared dictionary assigns dense
// IDs from 1 and would need 2^31 distinct values to reach it, so base and
// overlay ID spaces can never collide; an overlay ID means "a value class
// this query introduced", which by construction overlaps nothing indexed.
const overlayIDBit uint32 = 1 << 31

// Overlay is a query-scoped Interner over a base Dict: lookups resolve
// through the base first, and values the base has never seen get transient
// high-bit IDs local to the overlay. Query sources routinely carry values
// the lake lacks; interning them into the shared append-only Dict would grow
// a long-lived session's memory without bound, so every query works against
// its own throwaway overlay instead. Equality classes are exactly the merged
// dictionary's — two values get the same ID through an Overlay iff they
// would through one Dict — so the ID paths stay bit-identical to the string
// reference.
type Overlay struct {
	base *Dict

	mu     sync.RWMutex
	strs   map[string]uint32
	nums   map[uint64]uint32
	labels map[int64]uint32
	n      uint32
}

// NewOverlay returns an empty overlay over base.
func NewOverlay(base *Dict) *Overlay {
	return &Overlay{
		base:   base,
		strs:   make(map[string]uint32),
		nums:   make(map[uint64]uint32),
		labels: make(map[int64]uint32),
	}
}

// find looks an entry up in the overlay's own maps under a held lock.
func (o *Overlay) find(e DictEntry) (uint32, bool) {
	switch e.Kind {
	case KindString:
		id, ok := o.strs[e.Str]
		return id, ok
	case KindNumber:
		id, ok := o.nums[e.Bits]
		return id, ok
	default:
		id, ok := o.labels[e.Label]
		return id, ok
	}
}

// InternValue implements Interner: base IDs win, unseen values get
// overlay-local high-bit IDs.
func (o *Overlay) InternValue(v Value) uint32 {
	if v.Kind == KindNull {
		return NullID
	}
	if id, ok := o.base.LookupValue(v); ok {
		return id
	}
	e := entryOf(v)
	o.mu.RLock()
	id, ok := o.find(e)
	o.mu.RUnlock()
	if ok {
		return id
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if id, ok := o.find(e); ok {
		return id
	}
	o.n++
	id = overlayIDBit | o.n
	switch e.Kind {
	case KindString:
		o.strs[e.Str] = id
	case KindNumber:
		o.nums[e.Bits] = id
	default:
		o.labels[e.Label] = id
	}
	return id
}

// LookupValue implements Interner.
func (o *Overlay) LookupValue(v Value) (uint32, bool) {
	if v.Kind == KindNull {
		return NullID, true
	}
	if id, ok := o.base.LookupValue(v); ok {
		return id, true
	}
	e := entryOf(v)
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.find(e)
}

// Fingerprint summarizes the dictionary's entries in ID order. Two
// dictionaries share a fingerprint only if they assign every ID identically,
// which is what the persisted substrates check at load time to fail loudly
// on a dict/index file mismatch (e.g. a torn save). The hash is memoized
// against the entry count — valid because entries are append-only — so
// repeated checks (each substrate of a loaded IndexSet) pay for one pass.
func (d *Dict) Fingerprint() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fpLen != len(d.entries) {
		d.fp = FingerprintSnapshot(d.entries)
		d.fpLen = len(d.entries)
	}
	return d.fp
}

// FingerprintSnapshot is Fingerprint over an explicit Snapshot, for callers
// that must pin one consistent view across several writes.
func FingerprintSnapshot(entries []DictEntry) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, e := range entries {
		h.Write([]byte{byte(e.Kind)})
		switch e.Kind {
		case KindString:
			put(uint64(len(e.Str)))
			h.Write([]byte(e.Str))
		case KindNumber:
			put(e.Bits)
		default:
			put(uint64(e.Label))
		}
	}
	return h.Sum64()
}
