package table

// ComplementClosure keeps every original tuple and adds the merge of every
// complementing pair, repeating until no new tuple appears, then removes
// subsumed tuples. Unlike Complement (which replaces a pair by its merge and
// so under-combines when several tuples complement the same partner), the
// closure maximally combines tuples — the semantics full disjunction needs.
//
// maxRows bounds the closure's worst-case exponential growth; when the bound
// is hit the closure stops early and truncated is true. maxRows <= 0 means
// unbounded.
func ComplementClosure(t *Table, maxRows int) (out *Table, truncated bool) {
	rows := make([]Row, 0, len(t.Rows))
	seen := make(map[string]bool, len(t.Rows))
	add := func(r Row) bool {
		k := r.Key()
		if seen[k] {
			return false
		}
		seen[k] = true
		rows = append(rows, r)
		return true
	}
	for _, r := range t.Rows {
		add(r.Clone())
	}

	// Worklist closure: each new tuple is paired against everything present.
	for head := 0; head < len(rows); head++ {
		if maxRows > 0 && len(rows) >= maxRows {
			truncated = true
			break
		}
		for j := 0; j < head; j++ {
			if Complements(rows[head], rows[j]) {
				add(MergeComplement(rows[head], rows[j]))
				if maxRows > 0 && len(rows) >= maxRows {
					break
				}
			}
		}
	}

	closed := New(t.Name, t.Cols...)
	closed.Key = append([]int(nil), t.Key...)
	closed.Rows = rows
	return Subsume(closed), truncated
}

// FullDisjunction maximally combines tuples from the given tables, following
// ALITE's formulation: outer-union everything, then take the complementation
// closure and drop subsumed tuples. On key-less heterogeneous tables this is
// the state-of-the-art integration result Gen-T's baselines use.
//
// Full disjunction is worst-case exponential in the number of tables; the
// scalability experiments rely on exactly that blow-up. maxRows bounds the
// closure (<= 0 for unbounded); hitting it reports truncated, which the
// experiment harness treats as a timeout.
func FullDisjunction(ts []*Table, maxRows int) (out *Table, truncated bool) {
	u := OuterUnionAll(ts)
	out, truncated = ComplementClosure(u, maxRows)
	out.Name = "FD"
	return out, truncated
}
