package table

import "testing"

func TestOverlayKeepsBaseClean(t *testing.T) {
	base := NewDict()
	known := base.InternValue(S("known"))
	baseLen := base.Len()

	ov := NewOverlay(base)
	if got := ov.InternValue(S("known")); got != known {
		t.Fatalf("overlay returned %d for a base value, want %d", got, known)
	}
	novel := ov.InternValue(S("novel"))
	if novel&overlayIDBit == 0 {
		t.Fatalf("overlay-local ID %d missing the high bit", novel)
	}
	if got := ov.InternValue(S("novel")); got != novel {
		t.Error("overlay re-intern must be stable")
	}
	if got, ok := ov.LookupValue(S("novel")); !ok || got != novel {
		t.Error("overlay lookup must see overlay-local values")
	}
	if _, ok := ov.LookupValue(S("nowhere")); ok {
		t.Error("overlay lookup must miss values neither side has")
	}
	if base.Len() != baseLen {
		t.Fatalf("overlay interning grew the base dictionary: %d -> %d", baseLen, base.Len())
	}
	if _, ok := base.LookupValue(S("novel")); ok {
		t.Fatal("overlay value leaked into the base dictionary")
	}
	// Cross-kind classes apply in the overlay too.
	if ov.InternValue(S("3.0")) != ov.InternValue(N(3)) {
		t.Error("overlay must collapse numeric-text onto numbers")
	}
	if ov.InternValue(Null) != NullID {
		t.Error("overlay null must be NullID")
	}
	// Two overlays over one base are independent for novel values but agree
	// on base values.
	ov2 := NewOverlay(base)
	if ov2.InternValue(S("known")) != known {
		t.Error("second overlay must resolve base values identically")
	}
	if _, ok := ov2.LookupValue(S("novel")); ok {
		t.Error("overlays must not share local values")
	}
}

func TestFingerprintTracksEntries(t *testing.T) {
	a, b := NewDict(), NewDict()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("empty dictionaries must share a fingerprint")
	}
	a.InternValue(S("x"))
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint must change when entries are added")
	}
	b.InternValue(S("x"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical entries must share a fingerprint")
	}
	b.InternValue(N(1))
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("diverged dictionaries must not share a fingerprint")
	}
	if FingerprintSnapshot(a.Snapshot()) != a.Fingerprint() {
		t.Fatal("FingerprintSnapshot must agree with Fingerprint")
	}
}
