package table

import (
	"testing"
	"testing/quick"
)

func TestComplements(t *testing.T) {
	a := Row{S("Smith"), N(27), Null}
	b := Row{S("Smith"), Null, S("Male")}
	if !Complements(a, b) || !Complements(b, a) {
		t.Error("complementing pair not detected")
	}
	// Disagreement on a shared non-null kills complementation.
	c := Row{S("Smith"), N(99), S("Male")}
	if Complements(a, c) {
		t.Error("conflicting tuples must not complement")
	}
	// Subsumption is not complementation (nothing flows both ways).
	d := Row{S("Smith"), N(27), S("Male")}
	if Complements(a, d) {
		t.Error("subsuming tuple must not complement")
	}
	// No shared non-null value.
	e := Row{Null, Null, S("Male")}
	f := Row{S("Smith"), N(27), Null}
	if Complements(e, f) {
		t.Error("tuples sharing no value must not complement")
	}
}

func TestMergeComplement(t *testing.T) {
	a := Row{S("Smith"), N(27), Null}
	b := Row{S("Smith"), Null, S("Male")}
	m := MergeComplement(a, b)
	want := Row{S("Smith"), N(27), S("Male")}
	if !m.Equal(want) {
		t.Errorf("merge = %v", m)
	}
}

func TestComplementPaperExample(t *testing.T) {
	// Plain κ then β over Figure 5's A⊎B⊎C (without null labeling) fully
	// combines each person into one tuple, including the erroneous Male
	// gender from Table C — which is exactly why Algorithm 2 labels source
	// nulls first.
	u := OuterUnionAll([]*Table{figA(), figB(), figC()})
	got := Subsume(Complement(u))
	want := New("w", "ID", "Name", "Education Level", "Age", "Gender")
	want.AddRow(N(0), S("Smith"), S("Bachelors"), N(27), S("Male"))
	want.AddRow(N(1), S("Brown"), Null, N(24), S("Male"))
	want.AddRow(N(2), S("Wang"), S("High School"), N(32), S("Male"))
	if !SameInstance(got, want) {
		t.Errorf("κ/β of A⊎B⊎C wrong:\n%s", got)
	}
}

func TestComplementLeavesNoComplementingPair(t *testing.T) {
	prop := func(a randTable) bool {
		got := Complement(a.T)
		for i := range got.Rows {
			for j := i + 1; j < len(got.Rows); j++ {
				if Complements(got.Rows[i], got.Rows[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMinimalFormIdempotent(t *testing.T) {
	prop := func(a randTable) bool {
		once := MinimalForm(a.T)
		twice := MinimalForm(once)
		return EqualRows(once, twice)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestComplementClosureKeepsAllMerges(t *testing.T) {
	// Two tuples complement the same partner: the pairwise-replace κ loses
	// one combination, the closure keeps both.
	tbl := New("t", "id", "name", "age")
	tbl.AddRow(N(0), S("Smith"), Null)
	tbl.AddRow(Null, S("Smith"), N(27))
	tbl.AddRow(Null, S("Smith"), N(28))
	got, truncated := ComplementClosure(tbl, 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	if !mustRows(got,
		Row{N(0), S("Smith"), N(27)},
		Row{N(0), S("Smith"), N(28)},
	) {
		t.Errorf("closure wrong:\n%s", got)
	}
}

func TestComplementClosureBound(t *testing.T) {
	tbl := New("t", "id", "name", "age")
	for i := 0; i < 10; i++ {
		tbl.AddRow(N(float64(i)), S("Smith"), Null)
		tbl.AddRow(Null, S("Smith"), N(float64(100+i)))
	}
	_, truncated := ComplementClosure(tbl, 15)
	if !truncated {
		t.Error("bound not reported")
	}
}

func TestFullDisjunctionPaperExample(t *testing.T) {
	got, truncated := FullDisjunction([]*Table{figA(), figB(), figC()}, 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	want := New("w", "ID", "Name", "Education Level", "Age", "Gender")
	want.AddRow(N(0), S("Smith"), S("Bachelors"), N(27), S("Male"))
	want.AddRow(N(1), S("Brown"), Null, N(24), S("Male"))
	want.AddRow(N(2), S("Wang"), S("High School"), N(32), S("Male"))
	if !SameInstance(got, want) {
		t.Errorf("FD wrong:\n%s", got)
	}
}
