package table

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
)

// SegmentStore is a directory of segment files keyed by table name — the
// disk tier the lake's resident cache spills interned forms to and re-loads
// them from. Every write stamps the table's content fingerprint and the
// dictionary prefix the IDs were assigned under; every load verifies both, so
// a stale segment (the table changed, or the store belongs to a different
// lake lineage) is rejected rather than served.
//
// The store itself is stateless between calls — file presence and the
// stamped footers are the only source of truth — so it is safe for concurrent
// use as long as two writers never spill different contents under one name
// concurrently (the lake serializes spills per lineage).
type SegmentStore struct {
	dir string
}

// NewSegmentStore opens (creating if needed) a segment directory.
func NewSegmentStore(dir string) (*SegmentStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("table: segment store: %w", err)
	}
	return &SegmentStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *SegmentStore) Dir() string { return st.dir }

// SegmentPath returns the file a table's segment lives at. Names are
// path-escaped, so any valid table name maps to exactly one flat file.
func (st *SegmentStore) SegmentPath(name string) string {
	return filepath.Join(st.dir, url.PathEscape(name)+".seg")
}

// Write spills an interned form, skipping the write when an existing segment
// already holds exactly this content under a still-valid dictionary stamp —
// the common case when a form is evicted, re-loaded and evicted again.
// fp is Fingerprint of it.Table.
func (st *SegmentStore) Write(it *Interned, fp uint64, d *Dict) error {
	path := st.SegmentPath(it.Table.Name)
	if seg, err := OpenSegmentFile(path); err == nil &&
		seg.Name == it.Table.Name && seg.TableFP == fp &&
		d.VerifyPrefixStamp(seg.DictLen, seg.DictFP) {
		return nil
	}
	dictLen, dictFP := d.PrefixStamp()
	return WriteSegmentFile(path, it, fp, dictLen, dictFP)
}

// Load resolves a table's interned form from its segment, verifying the
// segment was written for exactly these contents (fp = Fingerprint(t))
// under a prefix of this dictionary. Any mismatch or corruption is an error;
// callers fall back to re-interning.
func (st *SegmentStore) Load(t *Table, fp uint64, d *Dict) (*Interned, error) {
	path := st.SegmentPath(t.Name)
	seg, err := OpenSegmentFile(path)
	if err != nil {
		return nil, err
	}
	if seg.Name != t.Name {
		return nil, fmt.Errorf("%w: %s: segment written for table %q, want %q",
			ErrSegmentCorrupt, path, seg.Name, t.Name)
	}
	if seg.TableFP != fp {
		return nil, fmt.Errorf("%w: %s: content fingerprint mismatch (table %s changed since spill)",
			ErrSegmentCorrupt, path, t.Name)
	}
	if !d.VerifyPrefixStamp(seg.DictLen, seg.DictFP) {
		return nil, fmt.Errorf("%w: %s: dictionary prefix stamp does not verify",
			ErrSegmentCorrupt, path)
	}
	return seg.Resolve(t)
}
