package table

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	s := figSource()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "Source")
	if err != nil {
		t.Fatal(err)
	}
	got.Key = []int{0}
	if !EqualRows(s, got) {
		t.Errorf("round trip changed rows:\n%s\nvs\n%s", s, got)
	}
}

func TestReadCSVNullsAndNumbers(t *testing.T) {
	in := "a,b,c\n1,,text\n,2.5,\n"
	got, err := ReadCSV(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Rows[0][0].Equal(N(1)) || !got.Rows[0][1].IsNull() {
		t.Errorf("row 0 wrong: %v", got.Rows[0])
	}
	if !got.Rows[1][1].Equal(N(2.5)) || !got.Rows[1][2].IsNull() {
		t.Errorf("row 1 wrong: %v", got.Rows[1])
	}
}

func TestReadCSVShortRecords(t *testing.T) {
	in := "a,b,c\nx\n"
	got, err := ReadCSV(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows[0]) != 3 || !got.Rows[0][2].IsNull() {
		t.Error("short records must be null-padded")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "t"); err == nil {
		t.Error("empty input should fail (no header)")
	}
}

func TestLoadSaveCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "fig_a.csv")
	if err := SaveCSVFile(path, figA()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "fig_a" {
		t.Errorf("table name = %q, want fig_a", got.Name)
	}
	if !EqualRows(figA(), got) {
		t.Error("file round trip changed rows")
	}
	if _, err := LoadCSVFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestCSVQuotedFields(t *testing.T) {
	tbl := New("q", "a", "b")
	tbl.AddRow(S("has,comma"), S("has\nnewline"))
	tbl.AddRow(S(`has"quote`), S("  padded  "))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "q")
	if err != nil {
		t.Fatal(err)
	}
	if !EqualRows(tbl, got) {
		t.Errorf("quoted round trip changed rows:\n%s\nvs\n%s", tbl, got)
	}
}

func TestCSVUnicode(t *testing.T) {
	tbl := New("u", "名前", "ville")
	tbl.AddRow(S("日本語"), S("Besançon"))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "u")
	if err != nil {
		t.Fatal(err)
	}
	if !EqualRows(tbl, got) {
		t.Error("unicode round trip changed rows")
	}
}
