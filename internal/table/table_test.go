package table

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	good := figSource()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}

	dup := New("d", "a", "a")
	if err := dup.Validate(); err == nil {
		t.Error("duplicate columns accepted")
	}

	ragged := New("r", "a", "b")
	ragged.Rows = append(ragged.Rows, Row{S("x")})
	if err := ragged.Validate(); err == nil {
		t.Error("ragged row accepted")
	}

	badKey := New("k", "a")
	badKey.Key = []int{5}
	if err := badKey.Validate(); err == nil {
		t.Error("out-of-range key accepted")
	}
}

func TestAddRowPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddRow with wrong width did not panic")
		}
	}()
	New("x", "a", "b").AddRow(S("only-one"))
}

func TestColIndexAndHasCols(t *testing.T) {
	s := figSource()
	if s.ColIndex("Age") != 2 {
		t.Errorf("ColIndex(Age) = %d", s.ColIndex("Age"))
	}
	if s.ColIndex("missing") != -1 {
		t.Error("missing column should be -1")
	}
	if !s.HasCols("ID", "Gender") || s.HasCols("ID", "nope") {
		t.Error("HasCols wrong")
	}
}

func TestRowKeyNullKeyAttr(t *testing.T) {
	s := figSource()
	r := Row{Null, S("X"), N(1), Null, Null}
	if s.RowKey(r) != "" {
		t.Error("row with null key attribute must produce empty key")
	}
	if s.RowKey(s.Rows[0]) == "" {
		t.Error("row with non-null key must produce a key")
	}
	keyless := figB()
	if keyless.RowKey(keyless.Rows[0]) != "" {
		t.Error("keyless table must produce empty row keys")
	}
}

func TestEqualRows(t *testing.T) {
	a, b := figA(), figA()
	// Same rows in a different order are equal as multisets.
	b.Rows[0], b.Rows[2] = b.Rows[2], b.Rows[0]
	if !EqualRows(a, b) {
		t.Error("row order should not matter")
	}
	b.Rows[0][1] = S("Changed")
	if EqualRows(a, b) {
		t.Error("changed value should break equality")
	}
	// Multiset semantics: duplicates must match in count.
	c, d := figA(), figA()
	c.Rows = append(c.Rows, c.Rows[0].Clone())
	if EqualRows(c, d) {
		t.Error("extra duplicate should break equality")
	}
	d.Rows = append(d.Rows, d.Rows[0].Clone())
	if !EqualRows(c, d) {
		t.Error("same duplicates should be equal")
	}
}

func TestSameInstance(t *testing.T) {
	a := figB() // Name, Age
	b := New("b2", "Age", "Name")
	for _, r := range a.Rows {
		b.AddRow(r[1], r[0])
	}
	if !SameInstance(a, b) {
		t.Error("column permutation should still be the same instance")
	}
	c := New("c", "Name", "Years")
	if SameInstance(a, c) {
		t.Error("different column names are different instances")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := figA()
	c := a.Clone()
	c.Rows[0][1] = S("Mutated")
	c.Cols[0] = "Mutated"
	if a.Rows[0][1].Str == "Mutated" || a.Cols[0] == "Mutated" {
		t.Error("Clone shares storage with the original")
	}
}

func TestColumnSetSkipsNulls(t *testing.T) {
	a := figA()
	set := a.ColumnSet(a.ColIndex("Education Level"))
	if len(set) != 2 {
		t.Errorf("got %d distinct values, want 2 (null skipped)", len(set))
	}
}

func TestSortRowsDeterministic(t *testing.T) {
	a := figA()
	b := figA()
	b.Rows[0], b.Rows[2] = b.Rows[2], b.Rows[0]
	a.SortRows()
	b.SortRows()
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			t.Fatal("SortRows did not canonicalize row order")
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := figSource().String()
	for _, want := range []string{"Source", "ID", "Smith", "—", "key="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestNumCells(t *testing.T) {
	if got := figSource().NumCells(); got != 15 {
		t.Errorf("NumCells = %d, want 15", got)
	}
}
