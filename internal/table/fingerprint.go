package table

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint hashes a table's schema and cell contents (structurally: kind
// tag plus payload, no canonical-key strings built). It is the content
// identity the lake's epoch chain and snapshot diffs are keyed on, and the
// stamp a persisted segment file carries so it can only ever be resolved
// against the exact table contents it was written from.
func Fingerprint(t *Table) uint64 {
	h := fnv.New64a()
	var b [8]byte
	h.Write([]byte(t.Name))
	for _, c := range t.Cols {
		h.Write([]byte{0})
		h.Write([]byte(c))
	}
	for _, k := range t.Key {
		binary.LittleEndian.PutUint64(b[:], uint64(k))
		h.Write(b[:])
	}
	for _, r := range t.Rows {
		h.Write([]byte{1})
		for _, v := range r {
			switch v.Kind {
			case KindNull:
				h.Write([]byte{2})
			case KindString:
				h.Write([]byte{3})
				h.Write([]byte(v.Str))
			case KindNumber:
				h.Write([]byte{4})
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Num))
				h.Write(b[:])
			case KindLabel:
				h.Write([]byte{5})
				binary.LittleEndian.PutUint64(b[:], uint64(v.ID))
				h.Write(b[:])
			}
			h.Write([]byte{6})
		}
	}
	return h.Sum64()
}
