package table

// MineKey searches for a minimal key of t: the smallest column subset (up to
// maxArity attributes, in left-to-right preference order) whose non-null
// value combinations are unique across all rows and that contains no nulls.
// It returns the key column indices, or nil when no key of that arity exists.
//
// The paper assumes Source Tables have a key discoverable by existing mining
// techniques; this is that technique for our setting.
func MineKey(t *Table, maxArity int) []int {
	if len(t.Rows) == 0 || len(t.Cols) == 0 {
		return nil
	}
	if maxArity > len(t.Cols) {
		maxArity = len(t.Cols)
	}
	for arity := 1; arity <= maxArity; arity++ {
		if key := mineKeyOfArity(t, arity); key != nil {
			return key
		}
	}
	return nil
}

func mineKeyOfArity(t *Table, arity int) []int {
	idx := make([]int, arity)
	var rec func(start, depth int) []int
	rec = func(start, depth int) []int {
		if depth == arity {
			if isKey(t, idx) {
				return append([]int(nil), idx...)
			}
			return nil
		}
		for i := start; i < len(t.Cols); i++ {
			idx[depth] = i
			if found := rec(i+1, depth+1); found != nil {
				return found
			}
		}
		return nil
	}
	return rec(0, 0)
}

func isKey(t *Table, idx []int) bool {
	seen := make(map[string]bool, len(t.Rows))
	for _, r := range t.Rows {
		k, ok := joinKey(r, idx)
		if !ok {
			return false // key attributes must be non-null
		}
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}
