package table

import "fmt"

// Project returns π over the named columns, in the given order. Columns not
// present in t are silently skipped; the result's key is preserved when every
// key column survives.
func (t *Table) Project(cols ...string) *Table {
	idx := make([]int, 0, len(cols))
	names := make([]string, 0, len(cols))
	for _, c := range cols {
		if i := t.ColIndex(c); i >= 0 {
			idx = append(idx, i)
			names = append(names, c)
		}
	}
	out := New(t.Name, names...)
	for _, r := range t.Rows {
		nr := make(Row, len(idx))
		for j, i := range idx {
			nr[j] = r[i]
		}
		out.Rows = append(out.Rows, nr)
	}
	// Preserve the key if all its columns survive.
	key := make([]int, 0, len(t.Key))
	for _, k := range t.Key {
		j := out.ColIndex(t.Cols[k])
		if j < 0 {
			key = nil
			break
		}
		key = append(key, j)
	}
	out.Key = key
	return out
}

// Predicate decides whether a row of t qualifies for selection.
type Predicate func(t *Table, r Row) bool

// Select returns σ over the predicate.
func (t *Table) Select(pred Predicate) *Table {
	out := New(t.Name, t.Cols...)
	out.Key = append([]int(nil), t.Key...)
	for _, r := range t.Rows {
		if pred(t, r) {
			out.Rows = append(out.Rows, r.Clone())
		}
	}
	return out
}

// ColEquals builds a predicate matching rows whose named column equals v.
func ColEquals(col string, v Value) Predicate {
	return func(t *Table, r Row) bool {
		i := t.ColIndex(col)
		return i >= 0 && r[i].Equal(v)
	}
}

// ColIn builds a predicate matching rows whose named column's value is in the
// given canonical-key set. Null never matches.
func ColIn(col string, keys map[string]bool) Predicate {
	return func(t *Table, r Row) bool {
		i := t.ColIndex(col)
		return i >= 0 && !r[i].IsNull() && keys[r[i].Key()]
	}
}

// NumCompare builds a predicate comparing the named numeric column against
// bound with the given operator ("<", "<=", ">", ">=", "=", "!="). Non-number
// and null cells never match.
func NumCompare(col, op string, bound float64) Predicate {
	return func(t *Table, r Row) bool {
		i := t.ColIndex(col)
		if i < 0 || r[i].Kind != KindNumber {
			return false
		}
		x := r[i].Num
		switch op {
		case "<":
			return x < bound
		case "<=":
			return x <= bound
		case ">":
			return x > bound
		case ">=":
			return x >= bound
		case "=":
			return x == bound
		case "!=":
			return x != bound
		default:
			panic(fmt.Sprintf("table: unknown comparison operator %q", op))
		}
	}
}

// Rename returns a copy of t with columns renamed per the mapping; columns
// absent from the mapping keep their names.
func (t *Table) Rename(mapping map[string]string) *Table {
	out := t.Clone()
	for i, c := range out.Cols {
		if n, ok := mapping[c]; ok {
			out.Cols[i] = n
		}
	}
	return out
}

// DropDuplicates removes duplicate rows, keeping first occurrences.
func (t *Table) DropDuplicates() *Table {
	out := New(t.Name, t.Cols...)
	out.Key = append([]int(nil), t.Key...)
	seen := make(map[string]bool, len(t.Rows))
	for _, r := range t.Rows {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, r.Clone())
		}
	}
	return out
}

// PadNullColumns returns t extended with a null column for every name in
// cols that t lacks (Algorithm 2 line 16).
func (t *Table) PadNullColumns(cols []string) *Table {
	missing := make([]string, 0)
	for _, c := range cols {
		if t.ColIndex(c) < 0 {
			missing = append(missing, c)
		}
	}
	if len(missing) == 0 {
		return t.Clone()
	}
	out := New(t.Name, append(append([]string(nil), t.Cols...), missing...)...)
	out.Key = append([]int(nil), t.Key...)
	for _, r := range t.Rows {
		nr := make(Row, len(out.Cols))
		copy(nr, r)
		for i := len(r); i < len(nr); i++ {
			nr[i] = Null
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// ReorderCols returns a copy of t whose columns appear in the given order;
// all named columns must exist in t.
func (t *Table) ReorderCols(cols []string) (*Table, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := t.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("table: reorder: %s has no column %q", t.Name, c)
		}
		idx[i] = j
	}
	out := New(t.Name, cols...)
	for _, r := range t.Rows {
		nr := make(Row, len(idx))
		for i, j := range idx {
			nr[i] = r[j]
		}
		out.Rows = append(out.Rows, nr)
	}
	for _, k := range t.Key {
		if j := out.ColIndex(t.Cols[k]); j >= 0 {
			out.Key = append(out.Key, j)
		}
	}
	return out, nil
}
