package table

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Row is one tuple.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Equal reports whether two rows have identical values position-wise.
func (r Row) Equal(s Row) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if !r[i].Equal(s[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical form of the row usable as a map key.
func (r Row) Key() string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.Key())
		b.WriteByte('\x01')
	}
	return b.String()
}

// NonNullCount returns the number of non-null cells (labels count as
// non-null).
func (r Row) NonNullCount() int {
	n := 0
	for _, v := range r {
		if !v.IsNull() {
			n++
		}
	}
	return n
}

// Table is a named relation. Cols holds column names; Key holds the indices
// of the (possibly multi-attribute) key, and is empty for keyless data lake
// tables.
type Table struct {
	Name string
	Cols []string
	Rows []Row
	Key  []int
}

// New creates a table with the given name and columns and no rows.
func New(name string, cols ...string) *Table {
	return &Table{Name: name, Cols: append([]string(nil), cols...)}
}

// ErrShape reports a structural problem with a table.
var ErrShape = errors.New("table: malformed table")

// Validate checks structural invariants: distinct column names, rows of the
// right width, and key indices in range.
func (t *Table) Validate() error {
	seen := make(map[string]bool, len(t.Cols))
	for _, c := range t.Cols {
		if seen[c] {
			return fmt.Errorf("%w: duplicate column %q in %s", ErrShape, c, t.Name)
		}
		seen[c] = true
	}
	for i, r := range t.Rows {
		if len(r) != len(t.Cols) {
			return fmt.Errorf("%w: row %d of %s has %d cells, want %d",
				ErrShape, i, t.Name, len(r), len(t.Cols))
		}
	}
	for _, k := range t.Key {
		if k < 0 || k >= len(t.Cols) {
			return fmt.Errorf("%w: key index %d out of range in %s", ErrShape, k, t.Name)
		}
	}
	return nil
}

// AddRow appends a tuple; it panics if the width is wrong, since that is
// always a programming error.
func (t *Table) AddRow(vals ...Value) {
	if len(vals) != len(t.Cols) {
		panic(fmt.Sprintf("table: AddRow to %s: %d values for %d columns",
			t.Name, len(vals), len(t.Cols)))
	}
	t.Rows = append(t.Rows, Row(vals).Clone())
}

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Cols) }

// NumCells returns rows × columns, the "size" used by the output-size-ratio
// scalability metric.
func (t *Table) NumCells() int { return len(t.Rows) * len(t.Cols) }

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// HasCols reports whether the table has every named column.
func (t *Table) HasCols(names ...string) bool {
	for _, n := range names {
		if t.ColIndex(n) < 0 {
			return false
		}
	}
	return true
}

// KeyCols returns the names of the key columns.
func (t *Table) KeyCols() []string {
	out := make([]string, len(t.Key))
	for i, k := range t.Key {
		out[i] = t.Cols[k]
	}
	return out
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	c := &Table{
		Name: t.Name,
		Cols: append([]string(nil), t.Cols...),
		Key:  append([]int(nil), t.Key...),
		Rows: make([]Row, len(t.Rows)),
	}
	for i, r := range t.Rows {
		c.Rows[i] = r.Clone()
	}
	return c
}

// Column returns all values of the named column, or nil if absent.
func (t *Table) Column(name string) []Value {
	i := t.ColIndex(name)
	if i < 0 {
		return nil
	}
	out := make([]Value, len(t.Rows))
	for j, r := range t.Rows {
		out[j] = r[i]
	}
	return out
}

// ColumnSet returns the distinct non-null values of column i, keyed by their
// canonical form.
func (t *Table) ColumnSet(i int) map[string]bool {
	set := make(map[string]bool)
	for _, r := range t.Rows {
		if !r[i].IsNull() {
			set[r[i].Key()] = true
		}
	}
	return set
}

// RowKey extracts the canonical key-tuple of a row using the table's Key; it
// returns "" when any key attribute is null (such rows align with nothing).
func (t *Table) RowKey(r Row) string {
	if len(t.Key) == 0 {
		return ""
	}
	var b strings.Builder
	for _, k := range t.Key {
		if r[k].IsNull() {
			return ""
		}
		b.WriteString(r[k].Key())
		b.WriteByte('\x01')
	}
	return b.String()
}

// EqualRows reports whether two tables hold the same multiset of rows over
// the same column list (order-insensitive in rows, order-sensitive in
// columns).
func EqualRows(a, b *Table) bool {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	count := make(map[string]int, len(a.Rows))
	for _, r := range a.Rows {
		count[r.Key()]++
	}
	for _, r := range b.Rows {
		count[r.Key()]--
		if count[r.Key()] < 0 {
			return false
		}
	}
	return true
}

// SameInstance reports whether two tables hold the same multiset of rows
// after reordering b's columns to match a's names; false if the column name
// sets differ.
func SameInstance(a, b *Table) bool {
	if len(a.Cols) != len(b.Cols) {
		return false
	}
	perm := make([]int, len(a.Cols))
	for i, c := range a.Cols {
		j := b.ColIndex(c)
		if j < 0 {
			return false
		}
		perm[i] = j
	}
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	count := make(map[string]int, len(a.Rows))
	for _, r := range a.Rows {
		count[r.Key()]++
	}
	tmp := make(Row, len(a.Cols))
	for _, r := range b.Rows {
		for i, j := range perm {
			tmp[i] = r[j]
		}
		k := tmp.Key()
		count[k]--
		if count[k] < 0 {
			return false
		}
	}
	return true
}

// SortRows orders rows deterministically (leftmost column first); useful for
// stable rendering and golden tests.
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool {
		a, b := t.Rows[i], t.Rows[j]
		for k := range a {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// String renders a small table for debugging.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s)", t.Name, strings.Join(t.Cols, ", "))
	if len(t.Key) > 0 {
		fmt.Fprintf(&b, " key=%v", t.KeyCols())
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		b.WriteString("  " + strings.Join(parts, " | ") + "\n")
	}
	return b.String()
}
