package table

import (
	"math"
	"strings"
	"testing"
)

// fuzzValue decodes a fuzzed (kind, str, num, id) quadruple into a Value
// through the contract-honoring constructors (a Number's Str is always its
// canonical text). Non-finite numbers are outside Parse's contract — N is
// only ever built from parsed decimal text — and are folded to 0; NaN's
// dictionary semantics are pinned separately in dict_test.go.
func fuzzValue(kind uint8, str string, num float64, id int64) Value {
	if math.IsInf(num, 0) || math.IsNaN(num) {
		num = 0
	}
	switch kind % 5 {
	case 0:
		return Null
	case 1:
		return S(str)
	case 2:
		return N(num)
	case 3:
		return Parse(str)
	default:
		return Label(id)
	}
}

// keyEquivalent is the independent oracle for Key()'s equivalence classes:
// null≡null, labels by identity, and everything else through the numeric
// collapse (numeric-text strings ≡ their number, ±0 ≡ 0, NaN ≡ NaN).
func keyEquivalent(v, w Value) bool {
	class := func(x Value) (isNum bool, bits uint64, s string) {
		switch x.Kind {
		case KindNumber:
			return true, canonicalBits(x.Num), ""
		default: // KindString
			if f, ok := parseDecimal(x.Str); ok {
				return true, canonicalBits(f), ""
			}
			return false, 0, x.Str
		}
	}
	if v.Kind == KindNull || w.Kind == KindNull {
		return v.Kind == w.Kind
	}
	if v.Kind == KindLabel || w.Kind == KindLabel {
		return v.Kind == w.Kind && v.ID == w.ID
	}
	vn, vb, vs := class(v)
	wn, wb, ws := class(w)
	if vn != wn {
		return false
	}
	if vn {
		return vb == wb
	}
	return vs == ws
}

// FuzzValueKey asserts Value.Key is injective across kinds — two values get
// the same key exactly when the equivalence oracle says so, equal values
// never get distinct keys, and the shared dictionary agrees — and that the
// '\x01'-joined Row.Key inherits that injectivity: joined keys collide only
// when every component collides, regardless of embedded control bytes.
func FuzzValueKey(f *testing.F) {
	f.Add(uint8(1), "plain", 0.0, int64(0), uint8(2), "1.5", 1.5, int64(0))
	f.Add(uint8(1), "1.0", 0.0, int64(0), uint8(2), "x", 1.0, int64(0))
	f.Add(uint8(1), "a\x01sb", 0.0, int64(0), uint8(1), "a", 0.0, int64(1))
	f.Add(uint8(3), "", 0.0, int64(5), uint8(1), "\x00L5", 0.0, int64(5))
	f.Add(uint8(0), "", 0.0, int64(0), uint8(2), "-0", math.Copysign(0, -1), int64(0))
	f.Fuzz(func(t *testing.T, k1 uint8, s1 string, n1 float64, id1 int64,
		k2 uint8, s2 string, n2 float64, id2 int64) {
		v, w := fuzzValue(k1, s1, n1, id1), fuzzValue(k2, s2, n2, id2)
		vk, wk := v.Key(), w.Key()

		if v.Equal(w) && vk != wk {
			t.Fatalf("Equal values with distinct keys: %#v (%q) vs %#v (%q)", v, vk, w, wk)
		}
		if (vk == wk) != keyEquivalent(v, w) {
			t.Fatalf("key collision oracle mismatch: %#v (%q) vs %#v (%q), oracle %v",
				v, vk, w, wk, keyEquivalent(v, w))
		}

		// The dictionary must carve out exactly the same classes.
		d := NewDict()
		if (d.InternValue(v) == d.InternValue(w)) != (vk == wk) {
			t.Fatalf("dict IDs diverge from keys: %#v vs %#v", v, w)
		}

		// Component keys must never leak a bare row separator, the property
		// row-key injectivity rests on.
		if strings.ContainsRune(vk, '\x01') || strings.ContainsRune(vk, '\x02') {
			t.Fatalf("key %q contains a bare separator", vk)
		}

		// Row-level: two-cell rows joined both ways around collide only when
		// the components collide pairwise, and never across widths.
		rowVW := Row{v, w}.Key()
		rowWV := Row{w, v}.Key()
		if (rowVW == rowWV) != (vk == wk) {
			t.Fatalf("row key collision without component collision: %q vs %q", rowVW, rowWV)
		}
		if (Row{v}).Key() == rowVW || (Row{w}).Key() == rowVW {
			t.Fatalf("row keys collide across widths: %q", rowVW)
		}
	})
}
