package table

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"sync"
)

// NullID is the reserved dictionary ID of the missing value ⊥. It is never
// assigned to a real value, so a zeroed []uint32 column cell reads as null.
const NullID uint32 = 0

// Dict is the lake-wide value dictionary: a concurrent, append-only interner
// mapping cell values to dense uint32 IDs, shared by every substrate built
// over one lake (inverted index, MinHash-LSH, matrix traversal, integration)
// so that each distinct value is hashed once and every hot path afterwards
// runs on IDs.
//
// ID-stability contract:
//
//   - IDs are assigned densely starting at 1, in first-intern order, and are
//     never reused, reassigned or removed — interning is append-only, so an
//     ID observed by any reader keeps meaning the same value for the life of
//     the Dict and of every snapshot persisted from it.
//   - Two values receive the same ID exactly when their canonical keys
//     (Value.Key) are equal: numeric-text strings collapse onto their number
//     (as Key does), ±0 share one entry, and all NaNs share one entry. ID
//     equality is therefore Key-string equality, which is what lets the
//     ID-based pipelines reproduce the string-based reference bit for bit.
//   - NullID (0) is reserved for ⊥ and never assigned.
//
// All methods are safe for concurrent use; lookups take a read lock and
// interning upgrades to a write lock only on first sight of a value.
type Dict struct {
	mu      sync.RWMutex
	strs    map[string]uint32
	nums    map[uint64]uint32
	labels  map[int64]uint32
	entries []DictEntry
	// fp memoizes Fingerprint over the first fpLen entries; fpLen is -1
	// until the first computation (0 must not alias "empty dict hashed").
	fp    uint64
	fpLen int
	// chain[i] is the chained fingerprint of the first i entries (chain[0]
	// covers the empty prefix), extended lazily — append-only entries make
	// every computed prefix permanent. PrefixStamp/VerifyPrefixStamp read it
	// in O(1) amortized, which is what lets thousands of segment files each
	// carry (and check) the stamp of the dictionary length they were written
	// at without an O(dict) hash per file.
	chain []uint64
}

// DictEntry is one persisted dictionary entry; entry i of a snapshot holds
// the value with ID i+1. Exactly one of the payload fields is meaningful,
// selected by Kind (KindString, KindNumber or KindLabel).
type DictEntry struct {
	Kind  Kind
	Str   string // raw text for KindString entries
	Bits  uint64 // canonical Float64bits for KindNumber entries
	Label int64  // label identity for KindLabel entries
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		strs:   make(map[string]uint32),
		nums:   make(map[uint64]uint32),
		labels: make(map[int64]uint32),
		fpLen:  -1,
	}
}

// canonicalBits collapses floats onto Key()'s equivalence classes: ±0 share
// one representation and so do all NaN payloads.
func canonicalBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if math.IsNaN(f) {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(f)
}

// entryOf maps a non-null value to its dictionary entry form, applying the
// same equivalence classes as Value.Key.
func entryOf(v Value) DictEntry {
	switch v.Kind {
	case KindLabel:
		return DictEntry{Kind: KindLabel, Label: v.ID}
	case KindNumber:
		return DictEntry{Kind: KindNumber, Bits: canonicalBits(v.Num)}
	default: // KindString
		if f, ok := parseDecimal(v.Str); ok {
			return DictEntry{Kind: KindNumber, Bits: canonicalBits(f)}
		}
		return DictEntry{Kind: KindString, Str: v.Str}
	}
}

// find looks an entry up under a held lock.
func (d *Dict) find(e DictEntry) (uint32, bool) {
	switch e.Kind {
	case KindString:
		id, ok := d.strs[e.Str]
		return id, ok
	case KindNumber:
		id, ok := d.nums[e.Bits]
		return id, ok
	default:
		id, ok := d.labels[e.Label]
		return id, ok
	}
}

// InternValue returns v's ID, assigning the next one on first sight. Nulls
// return NullID without touching the dictionary.
func (d *Dict) InternValue(v Value) uint32 {
	if v.Kind == KindNull {
		return NullID
	}
	return d.internEntry(entryOf(v))
}

func (d *Dict) internEntry(e DictEntry) uint32 {
	d.mu.RLock()
	id, ok := d.find(e)
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.find(e); ok {
		return id
	}
	id = uint32(len(d.entries)) + 1
	d.entries = append(d.entries, e)
	switch e.Kind {
	case KindString:
		d.strs[e.Str] = id
	case KindNumber:
		d.nums[e.Bits] = id
	default:
		d.labels[e.Label] = id
	}
	return id
}

// LookupValue returns v's ID without interning; ok is false when v's value
// class has never been interned (nulls report NullID, true).
func (d *Dict) LookupValue(v Value) (uint32, bool) {
	if v.Kind == KindNull {
		return NullID, true
	}
	e := entryOf(v)
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.find(e)
}

// LookupKey is LookupValue addressed by a canonical key string (Value.Key
// output) — the compatibility bridge for string-keyed callers probing an
// ID-keyed index. Malformed keys report false.
func (d *Dict) LookupKey(key string) (uint32, bool) {
	if key == "" {
		return 0, false
	}
	if key[0] == 's' {
		raw, ok := keyUnescape(key[1:])
		if !ok {
			return 0, false
		}
		d.mu.RLock()
		defer d.mu.RUnlock()
		id, ok := d.strs[raw]
		return id, ok
	}
	if key[0] != '\x00' || len(key) < 2 {
		return 0, false
	}
	switch key[1] {
	case 'N':
		return NullID, true
	case 'L':
		n, err := strconv.ParseInt(key[2:], 10, 64)
		if err != nil {
			return 0, false
		}
		d.mu.RLock()
		defer d.mu.RUnlock()
		id, ok := d.labels[n]
		return id, ok
	case '#':
		f, err := strconv.ParseFloat(key[2:], 64)
		if err != nil {
			return 0, false
		}
		d.mu.RLock()
		defer d.mu.RUnlock()
		id, ok := d.nums[canonicalBits(f)]
		return id, ok
	}
	return 0, false
}

// ValueOf reconstructs the value of an assigned ID (numeric entries come
// back as canonical-text numbers). It panics on an unassigned non-null ID,
// which is always a programming error under the stability contract.
func (d *Dict) ValueOf(id uint32) Value {
	if id == NullID {
		return Null
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	e := d.entries[id-1]
	switch e.Kind {
	case KindString:
		return S(e.Str)
	case KindNumber:
		return N(math.Float64frombits(e.Bits))
	default:
		return Label(e.Label)
	}
}

// Len returns the number of assigned IDs; IDs 1..Len() are valid.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// Snapshot copies the entries in ID order (entry i holds ID i+1), the
// persistable form of the dictionary. Interning concurrent with Snapshot may
// or may not be included, but the returned prefix is always consistent.
func (d *Dict) Snapshot() []DictEntry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]DictEntry, len(d.entries))
	copy(out, d.entries)
	return out
}

// prefixChainSeed is chain[0]: a non-zero base so the stamp of an empty
// prefix cannot alias an unset (zero) stamp field in a persisted footer.
const prefixChainSeed = 0x9e3779b97f4a7c15

// extendChainLocked grows the cumulative prefix-fingerprint chain to cover
// the first n entries; d.mu must be held for writing.
func (d *Dict) extendChainLocked(n int) {
	if len(d.chain) == 0 {
		d.chain = append(d.chain, prefixChainSeed)
	}
	for i := len(d.chain) - 1; i < n; i++ {
		e := d.entries[i]
		h := fnv.New64a()
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], d.chain[i])
		h.Write(b[:])
		h.Write([]byte{byte(e.Kind)})
		switch e.Kind {
		case KindString:
			h.Write([]byte(e.Str))
		case KindNumber:
			binary.LittleEndian.PutUint64(b[:], e.Bits)
			h.Write(b[:])
		default:
			binary.LittleEndian.PutUint64(b[:], uint64(e.Label))
			h.Write(b[:])
		}
		d.chain = append(d.chain, h.Sum64())
	}
}

// PrefixStamp returns the dictionary's current length and the chained
// fingerprint of exactly that prefix — the stamp a segment file written under
// this dictionary carries. Because entries are append-only, a stamp taken now
// stays verifiable for the life of the lake, however much the dictionary
// grows afterwards.
func (d *Dict) PrefixStamp() (n int, fp uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n = len(d.entries)
	d.extendChainLocked(n)
	return n, d.chain[n]
}

// VerifyPrefixStamp reports whether this dictionary's first n entries hash to
// fp — i.e. whether IDs 1..n persisted under the stamped dictionary mean the
// same values here. n beyond the dictionary's length can never verify.
func (d *Dict) VerifyPrefixStamp(n int, fp uint64) bool {
	if n < 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > len(d.entries) {
		return false
	}
	d.extendChainLocked(n)
	return d.chain[n] == fp
}

// PrefixOf reports whether d's entries are a prefix of o's — every ID
// assigned by d means the same value under o. A dictionary is always a
// prefix of itself, and a Snapshot-restored dictionary is a prefix of the
// live dictionary it was snapshotted from (append-only growth), which is
// what lets persisted ID-keyed indexes serve a lake whose dictionary has
// since grown.
func (d *Dict) PrefixOf(o *Dict) bool {
	if d == o {
		return true
	}
	oe := o.Snapshot()
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.entries) > len(oe) {
		return false
	}
	for i, e := range d.entries {
		if oe[i] != e {
			return false
		}
	}
	return true
}

// NewDictFromSnapshot rebuilds a dictionary from a persisted snapshot,
// reassigning each entry its original ID. Duplicate or null entries mean the
// snapshot was not produced by Snapshot and are rejected.
func NewDictFromSnapshot(entries []DictEntry) (*Dict, error) {
	d := NewDict()
	for i, e := range entries {
		switch e.Kind {
		case KindString, KindNumber, KindLabel:
		default:
			return nil, fmt.Errorf("table: dict entry %d has kind %d", i, e.Kind)
		}
		if _, dup := d.find(e); dup {
			return nil, fmt.Errorf("table: duplicate dict entry at ID %d", i+1)
		}
		id := uint32(i) + 1
		d.entries = append(d.entries, e)
		switch e.Kind {
		case KindString:
			d.strs[e.Str] = id
		case KindNumber:
			d.nums[e.Bits] = id
		default:
			d.labels[e.Label] = id
		}
	}
	return d, nil
}

// MaxInternKeyArity is the widest table key the interned ID-tuple fast paths
// handle; wider keys fall back to canonical-string row keys.
const MaxInternKeyArity = 4

// IDKey is an interned key tuple: the dictionary IDs of a row's key values
// in key order, zero-padded past the key's arity (NullID never appears in a
// valid key, so padding cannot collide with a real value).
type IDKey [MaxInternKeyArity]uint32

// InternIDKey interns the key cells of r addressed by idx and returns their
// ID tuple; ok is false when any key cell is null (such rows align with
// nothing, exactly as Table.RowKey returning "").
func InternIDKey(d Interner, r Row, idx []int) (IDKey, bool) {
	var k IDKey
	for j, i := range idx {
		v := r[i]
		if v.Kind == KindNull {
			return IDKey{}, false
		}
		k[j] = d.InternValue(v)
	}
	return k, true
}

// LookupIDKey is InternIDKey without interning: ok is additionally false
// when any key cell's value class is absent from the dictionary — absent
// values cannot equal any interned key value, so the row matches no
// interned key.
func LookupIDKey(d Interner, r Row, idx []int) (IDKey, bool) {
	var k IDKey
	for j, i := range idx {
		v := r[i]
		if v.Kind == KindNull {
			return IDKey{}, false
		}
		id, ok := d.LookupValue(v)
		if !ok {
			return IDKey{}, false
		}
		k[j] = id
	}
	return k, true
}
