package table

// ValueMap is a small, single-writer value→uint32 index under Value.Key
// equality: two values map to the same slot exactly when Value.Key agrees
// (numeric-text strings collapse onto their number, ±0 and all NaNs share a
// slot), the same equivalence the lake Dict assigns IDs by. Unlike the Dict
// it takes no locks and holds only the values its owner put in, so probes
// stay in cache — it exists for hot read paths (matrix key alignment) that
// would otherwise pay a read-lock plus a lake-sized map probe per cell.
// Concurrent reads are safe once writes stop; writes are not synchronized.
type ValueMap struct {
	strs   map[string]uint32
	nums   map[uint64]uint32
	labels map[int64]uint32
	n      uint32
}

// NewValueMap returns an empty map sized for about n values.
func NewValueMap(n int) *ValueMap {
	return &ValueMap{
		strs:   make(map[string]uint32, n),
		nums:   make(map[uint64]uint32, n),
		labels: make(map[int64]uint32),
	}
}

// Put binds v to id, overwriting any previous binding. Nulls are ignored.
func (m *ValueMap) Put(v Value, id uint32) {
	switch v.Kind {
	case KindNull:
	case KindLabel:
		m.labels[v.ID] = id
	case KindNumber:
		m.nums[canonicalBits(v.Num)] = id
	default: // KindString
		if f, ok := parseDecimal(v.Str); ok {
			m.nums[canonicalBits(f)] = id
		} else {
			m.strs[v.Str] = id
		}
	}
}

// Get returns v's binding; ok is false for nulls and unbound values.
func (m *ValueMap) Get(v Value) (uint32, bool) {
	switch v.Kind {
	case KindNull:
		return 0, false
	case KindLabel:
		id, ok := m.labels[v.ID]
		return id, ok
	case KindNumber:
		id, ok := m.nums[canonicalBits(v.Num)]
		return id, ok
	default: // KindString
		if f, ok := parseDecimal(v.Str); ok {
			id, ok := m.nums[canonicalBits(f)]
			return id, ok
		}
		id, ok := m.strs[v.Str]
		return id, ok
	}
}

// Intern returns v's binding, assigning ids 1, 2, … in first-sight order —
// 0 is never assigned, so callers can zero-pad fixed-width id tuples the way
// IDKey does with NullID. ok is false only for nulls.
func (m *ValueMap) Intern(v Value) (uint32, bool) {
	if id, ok := m.Get(v); ok {
		return id, true
	}
	if v.Kind == KindNull {
		return 0, false
	}
	m.n++
	m.Put(v, m.n)
	return m.n, true
}
