package table

// Fixtures from the paper's running example (Figures 3 and 5): a Source
// Table about applicants and the data lake tables A, B, C that overlap it.

// figSource returns the Source Table of Figure 3 (key column "ID").
func figSource() *Table {
	s := New("Source", "ID", "Name", "Age", "Gender", "Education Level")
	s.Key = []int{0}
	s.AddRow(N(0), S("Smith"), N(27), Null, S("Bachelors"))
	s.AddRow(N(1), S("Brown"), N(24), S("Male"), S("Masters"))
	s.AddRow(N(2), S("Wang"), N(32), S("Female"), S("High School"))
	return s
}

// figA returns Table A of Figure 3: ID, Name, Education Level.
func figA() *Table {
	a := New("A", "ID", "Name", "Education Level")
	a.AddRow(N(0), S("Smith"), S("Bachelors"))
	a.AddRow(N(1), S("Brown"), Null)
	a.AddRow(N(2), S("Wang"), S("High School"))
	return a
}

// figB returns Table B of Figure 3: Name, Age.
func figB() *Table {
	b := New("B", "Name", "Age")
	b.AddRow(S("Smith"), N(27))
	b.AddRow(S("Brown"), N(24))
	b.AddRow(S("Wang"), N(32))
	return b
}

// figC returns Table C of Figure 3: Name, Gender — the table whose "Male"
// values contradict the Source.
func figC() *Table {
	c := New("C", "Name", "Gender")
	c.AddRow(S("Smith"), S("Male"))
	c.AddRow(S("Brown"), S("Male"))
	c.AddRow(S("Wang"), S("Male"))
	return c
}

// mustRows asserts a table holds exactly the given rows as a multiset.
func mustRows(t *Table, rows ...Row) bool {
	want := New(t.Name, t.Cols...)
	for _, r := range rows {
		want.Rows = append(want.Rows, r)
	}
	return EqualRows(t, want)
}
