package table

// Complements reports whether t1 and t2 (same schema) complement each other:
// they agree on every attribute where both are non-null, share at least one
// non-null value, and each has a non-null value where the other has a null.
func Complements(t1, t2 Row) bool {
	share, oneFills, twoFills := false, false, false
	for i := range t1 {
		a, b := t1[i], t2[i]
		switch {
		case a.IsNull() && b.IsNull():
		case a.IsNull():
			twoFills = true
		case b.IsNull():
			oneFills = true
		case a.Equal(b):
			share = true
		default:
			return false // disagree on a shared non-null
		}
	}
	return share && oneFills && twoFills
}

// MergeComplement applies κ to one complementing pair, producing the tuple
// holding all non-null values of either.
func MergeComplement(t1, t2 Row) Row {
	out := make(Row, len(t1))
	for i := range t1 {
		if t1[i].IsNull() {
			out[i] = t2[i]
		} else {
			out[i] = t1[i]
		}
	}
	return out
}

// Complement applies κ on a whole table: repeatedly merge complementing
// pairs until no pair complements. Merged inputs are replaced by their merge;
// the result has no complementing tuples.
func Complement(t *Table) *Table {
	rows := make([]Row, 0, len(t.Rows))
	seen := make(map[string]bool, len(t.Rows))
	for _, r := range t.Rows {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			rows = append(rows, r.Clone())
		}
	}

	// Fixpoint: scan for a complementing pair, merge, rescan. Each merge
	// removes a tuple, so at most len(rows)-1 merges happen and termination
	// is guaranteed.
	for {
		merged := false
	scan:
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				if Complements(rows[i], rows[j]) {
					m := MergeComplement(rows[i], rows[j])
					rows[i] = m
					rows = append(rows[:j], rows[j+1:]...)
					merged = true
					break scan
				}
			}
		}
		if !merged {
			break
		}
	}

	out := New(t.Name, t.Cols...)
	out.Key = append([]int(nil), t.Key...)
	// Re-deduplicate: merges can converge to equal tuples.
	seen = make(map[string]bool, len(rows))
	for _, r := range rows {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// MinimalForm removes duplicates and applies β and κ to fixpoint, yielding a
// table with no duplicate, subsumable or complementable tuples — the
// precondition of the representative-operators theorem (Theorem 8).
func MinimalForm(t *Table) *Table {
	cur := t
	for {
		next := Subsume(Complement(cur))
		if len(next.Rows) == len(cur.Rows) && EqualRows(next, cur) {
			return next
		}
		cur = next
	}
}
