package query

import (
	"strings"
	"testing"

	"gent/internal/lake"
	"gent/internal/lake/laketest"
	"gent/internal/table"
)

func queryLake() *lake.Lake {
	l := lake.New()
	people := table.New("people", "id", "name", "age")
	people.AddRow(table.S("p1"), table.S("Ann"), table.N(30))
	people.AddRow(table.S("p2"), table.S("Bob"), table.N(40))
	people.AddRow(table.S("p3"), table.S("Cem"), table.N(50))
	laketest.Add(l, people)
	cities := table.New("cities", "id", "city")
	cities.AddRow(table.S("p1"), table.S("Boston"))
	cities.AddRow(table.S("p2"), table.S("Worcester"))
	laketest.Add(l, cities)
	return l
}

func run(t *testing.T, p Plan) *table.Table {
	t.Helper()
	got, err := p.Run(queryLake())
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestScanProjectSelect(t *testing.T) {
	p := Project{
		Input: Select{Input: Scan{"people"}, Col: "age", Op: Ge, Value: table.N(40)},
		Cols:  []string{"id", "name"},
	}
	got := run(t, p)
	if len(got.Rows) != 2 || len(got.Cols) != 2 {
		t.Fatalf("wrong result:\n%s", got)
	}
	if !strings.Contains(p.String(), "π") || !strings.Contains(p.String(), "σ") {
		t.Errorf("bad rendering: %s", p)
	}
	if tabs := p.Tables(); len(tabs) != 1 || tabs[0] != "people" {
		t.Errorf("tables = %v", tabs)
	}
}

func TestSelectOperators(t *testing.T) {
	cases := []struct {
		op   CompareOp
		v    table.Value
		want int
	}{
		{Lt, table.N(40), 1}, {Le, table.N(40), 2}, {Gt, table.N(40), 1},
		{Ge, table.N(40), 2}, {Eq, table.N(40), 1}, {Neq, table.N(40), 2},
		{Eq, table.S("Ann"), 0}, // Ann is not in the age column
	}
	for _, c := range cases {
		col := "age"
		got := run(t, Select{Input: Scan{"people"}, Col: col, Op: c.op, Value: c.v})
		if len(got.Rows) != c.want {
			t.Errorf("age %s %v: %d rows, want %d", c.op, c.v, len(got.Rows), c.want)
		}
	}
	// String equality on the right column.
	got := run(t, Select{Input: Scan{"people"}, Col: "name", Op: Eq, Value: table.S("Ann")})
	if len(got.Rows) != 1 {
		t.Errorf("name=Ann: %d rows", len(got.Rows))
	}
	// Ordering on strings is rejected.
	if _, err := (Select{Input: Scan{"people"}, Col: "name", Op: Lt, Value: table.S("B")}).Run(queryLake()); err == nil {
		t.Error("string ordering should be rejected")
	}
}

func TestJoinKinds(t *testing.T) {
	inner := run(t, Join{Left: Scan{"people"}, Right: Scan{"cities"}, Kind: InnerJoin})
	if len(inner.Rows) != 2 {
		t.Errorf("inner join rows = %d", len(inner.Rows))
	}
	left := run(t, Join{Left: Scan{"people"}, Right: Scan{"cities"}, Kind: LeftJoin})
	if len(left.Rows) != 3 {
		t.Errorf("left join rows = %d", len(left.Rows))
	}
	outer := run(t, Join{Left: Scan{"cities"}, Right: Scan{"people"}, Kind: FullOuterJoin})
	if len(outer.Rows) != 3 {
		t.Errorf("outer join rows = %d", len(outer.Rows))
	}
	if tabs := (Join{Left: Scan{"people"}, Right: Scan{"cities"}}).Tables(); len(tabs) != 2 {
		t.Errorf("join tables = %v", tabs)
	}
}

func TestUnion(t *testing.T) {
	young := Select{Input: Scan{"people"}, Col: "age", Op: Lt, Value: table.N(40)}
	old := Select{Input: Scan{"people"}, Col: "age", Op: Ge, Value: table.N(40)}
	got := run(t, Union{Left: young, Right: old})
	if len(got.Rows) != 3 {
		t.Errorf("union rows = %d", len(got.Rows))
	}
	// Unequal schemas need Outer.
	if _, err := (Union{Left: Scan{"people"}, Right: Scan{"cities"}}).Run(queryLake()); err == nil {
		t.Error("inner union of unequal schemas should fail")
	}
	ou := run(t, Union{Left: Scan{"people"}, Right: Scan{"cities"}, Outer: true})
	if len(ou.Cols) != 4 || len(ou.Rows) != 5 {
		t.Errorf("outer union wrong:\n%s", ou)
	}
}

func TestSubsumeComplementNodes(t *testing.T) {
	// β(κ(people ⊎ cities)) merges the partial tuples per id.
	p := Subsume{Complement{Union{Left: Scan{"people"}, Right: Scan{"cities"}, Outer: true}}}
	got := run(t, p)
	if len(got.Rows) != 3 {
		t.Errorf("κ/β pipeline rows = %d, want 3 (one per person)\n%s", len(got.Rows), got)
	}
	for _, want := range []string{"β", "κ", "⊎"} {
		if !strings.Contains(p.String(), want) {
			t.Errorf("rendering missing %s: %s", want, p)
		}
	}
}

func TestScanMissingTable(t *testing.T) {
	if _, err := (Scan{"missing"}).Run(queryLake()); err == nil {
		t.Error("missing table should fail")
	}
}

func TestMaterialized(t *testing.T) {
	tb := table.New("mem", "x")
	tb.AddRow(table.S("v"))
	got := run(t, Materialized{tb})
	if got != tb {
		t.Error("materialized leaf must return its table")
	}
}
