// Package query implements a small SPJU query algebra over the table
// substrate: scan, projection, selection, the join family, inner/outer
// union, and the unary integration operators β and κ. Plans are explicit
// trees, so the 26 benchmark queries that define the Source Tables are
// inspectable and serializable, and the Auto-Pipeline* baseline can return
// the pipeline it synthesized — not just its output table.
package query

import (
	"fmt"
	"strings"

	"gent/internal/lake"
	"gent/internal/table"
)

// Plan is one node of a query tree.
type Plan interface {
	// Run evaluates the plan over a lake.
	Run(l *lake.Lake) (*table.Table, error)
	// String renders the plan as a one-line algebra expression.
	String() string
	// Tables lists the base tables the plan reads (with duplicates
	// removed).
	Tables() []string
}

// Scan reads a named base table.
type Scan struct{ Name string }

// Run implements Plan.
func (s Scan) Run(l *lake.Lake) (*table.Table, error) {
	t := l.Snapshot().Get(s.Name)
	if t == nil {
		return nil, fmt.Errorf("query: no table %q", s.Name)
	}
	return t, nil
}

// String implements Plan.
func (s Scan) String() string { return s.Name }

// Tables implements Plan.
func (s Scan) Tables() []string { return []string{s.Name} }

// Project is π over named columns.
type Project struct {
	Input Plan
	Cols  []string
}

// Run implements Plan.
func (p Project) Run(l *lake.Lake) (*table.Table, error) {
	in, err := p.Input.Run(l)
	if err != nil {
		return nil, err
	}
	return in.Project(p.Cols...), nil
}

// String implements Plan.
func (p Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Cols, ","), p.Input)
}

// Tables implements Plan.
func (p Project) Tables() []string { return p.Input.Tables() }

// CompareOp names a selection comparison.
type CompareOp string

// Selection comparisons.
const (
	Lt  CompareOp = "<"
	Le  CompareOp = "<="
	Gt  CompareOp = ">"
	Ge  CompareOp = ">="
	Eq  CompareOp = "="
	Neq CompareOp = "!="
)

// Select is σ with a single comparison predicate: Col op Value. Numeric
// bounds compare numerically; string values compare by equality operators
// only.
type Select struct {
	Input Plan
	Col   string
	Op    CompareOp
	Value table.Value
}

// Run implements Plan.
func (s Select) Run(l *lake.Lake) (*table.Table, error) {
	in, err := s.Input.Run(l)
	if err != nil {
		return nil, err
	}
	var pred table.Predicate
	switch {
	case s.Value.Kind == table.KindNumber:
		pred = table.NumCompare(s.Col, string(s.Op), s.Value.Num)
	case s.Op == Eq:
		pred = table.ColEquals(s.Col, s.Value)
	case s.Op == Neq:
		eq := table.ColEquals(s.Col, s.Value)
		pred = func(t *table.Table, r table.Row) bool { return !eq(t, r) }
	default:
		return nil, fmt.Errorf("query: %s not supported for non-numeric values", s.Op)
	}
	return in.Select(pred), nil
}

// String implements Plan.
func (s Select) String() string {
	return fmt.Sprintf("σ[%s%s%s](%s)", s.Col, s.Op, s.Value, s.Input)
}

// Tables implements Plan.
func (s Select) Tables() []string { return s.Input.Tables() }

// JoinKind selects the join operator.
type JoinKind int

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
	FullOuterJoin
)

func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "⋈"
	case LeftJoin:
		return "⟕"
	default:
		return "⟗"
	}
}

// Join is a natural join over the inputs' shared columns.
type Join struct {
	Left, Right Plan
	Kind        JoinKind
}

// Run implements Plan.
func (j Join) Run(l *lake.Lake) (*table.Table, error) {
	left, err := j.Left.Run(l)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Run(l)
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case InnerJoin:
		return table.InnerJoin(left, right), nil
	case LeftJoin:
		return table.LeftJoin(left, right), nil
	default:
		return table.FullOuterJoin(left, right), nil
	}
}

// String implements Plan.
func (j Join) String() string {
	return fmt.Sprintf("(%s %s %s)", j.Left, j.Kind, j.Right)
}

// Tables implements Plan.
func (j Join) Tables() []string { return mergeTables(j.Left, j.Right) }

// Union combines two inputs: inner union when their schemas agree, outer
// union (⊎) otherwise when Outer is set.
type Union struct {
	Left, Right Plan
	Outer       bool
}

// Run implements Plan.
func (u Union) Run(l *lake.Lake) (*table.Table, error) {
	left, err := u.Left.Run(l)
	if err != nil {
		return nil, err
	}
	right, err := u.Right.Run(l)
	if err != nil {
		return nil, err
	}
	if table.SameSchema(left, right) {
		return table.InnerUnion(left, right), nil
	}
	if !u.Outer {
		return nil, fmt.Errorf("query: inner union of unequal schemas %v vs %v",
			left.Cols, right.Cols)
	}
	return table.OuterUnion(left, right), nil
}

// String implements Plan.
func (u Union) String() string {
	op := "∪"
	if u.Outer {
		op = "⊎"
	}
	return fmt.Sprintf("(%s %s %s)", u.Left, op, u.Right)
}

// Tables implements Plan.
func (u Union) Tables() []string { return mergeTables(u.Left, u.Right) }

// Subsume applies β.
type Subsume struct{ Input Plan }

// Run implements Plan.
func (s Subsume) Run(l *lake.Lake) (*table.Table, error) {
	in, err := s.Input.Run(l)
	if err != nil {
		return nil, err
	}
	return table.Subsume(in), nil
}

// String implements Plan.
func (s Subsume) String() string { return fmt.Sprintf("β(%s)", s.Input) }

// Tables implements Plan.
func (s Subsume) Tables() []string { return s.Input.Tables() }

// Complement applies κ.
type Complement struct{ Input Plan }

// Run implements Plan.
func (c Complement) Run(l *lake.Lake) (*table.Table, error) {
	in, err := c.Input.Run(l)
	if err != nil {
		return nil, err
	}
	return table.Complement(in), nil
}

// String implements Plan.
func (c Complement) String() string { return fmt.Sprintf("κ(%s)", c.Input) }

// Tables implements Plan.
func (c Complement) Tables() []string { return c.Input.Tables() }

func mergeTables(a, b Plan) []string {
	seen := make(map[string]bool)
	out := make([]string, 0)
	for _, n := range append(a.Tables(), b.Tables()...) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Materialized wraps an already-computed table as a plan leaf; Auto-
// Pipeline* uses it for its input tables, which are not lake members.
type Materialized struct{ T *table.Table }

// Run implements Plan.
func (m Materialized) Run(*lake.Lake) (*table.Table, error) { return m.T, nil }

// String implements Plan.
func (m Materialized) String() string { return m.T.Name }

// Tables implements Plan.
func (m Materialized) Tables() []string { return []string{m.T.Name} }
