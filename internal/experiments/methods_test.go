package experiments

import (
	"testing"
	"time"

	"gent/internal/benchmark"
	"gent/internal/lake"
	"gent/internal/lake/laketest"
	"gent/internal/metrics"
	"gent/internal/table"
)

func methodInput() Input {
	src := table.New("S", "k", "a", "b")
	src.Key = []int{0}
	src.AddRow(table.S("k1"), table.S("a1"), table.S("b1"))
	src.AddRow(table.S("k2"), table.S("a2"), table.S("b2"))

	left := src.Project("k", "a")
	left.Name = "left"
	left.Key = nil
	right := src.Project("k", "b")
	right.Name = "right"
	right.Key = nil

	l := lake.New()
	laketest.Add(l, left)
	laketest.Add(l, right)
	return Input{
		Src:        src,
		Lake:       l,
		Candidates: []*table.Table{left, right},
		IntSet:     []*table.Table{left, right},
	}
}

func TestRunEveryMethod(t *testing.T) {
	in := methodInput()
	opts := DefaultRunOptions()
	methods := []Method{
		MethodGenT, MethodALITE, MethodALITEIntSet, MethodALITEPS,
		MethodALITEPSIntSet, MethodAutoPipeline, MethodAutoPipelineIntSet,
		MethodVerIntSet, MethodNaiveLLM,
	}
	for _, m := range methods {
		o := Run(m, in, opts)
		if o.Reclaimed == nil {
			t.Fatalf("%s returned no table", m)
		}
		if o.Runtime <= 0 {
			t.Errorf("%s recorded no runtime", m)
		}
		if o.Report.EIS < 0 || o.Report.EIS > 1 {
			t.Errorf("%s EIS out of range: %v", m, o.Report.EIS)
		}
	}
	// On this clean vertical partition, the strong methods reclaim exactly.
	for _, m := range []Method{MethodGenT, MethodALITEPS, MethodALITEPSIntSet} {
		if o := Run(m, in, opts); !o.Report.PerfectReclamation {
			t.Errorf("%s failed the trivial partition: %+v", m, o.Report)
		}
	}
	// The naive stand-in must not.
	if o := Run(MethodNaiveLLM, in, opts); o.Report.PerfectReclamation {
		t.Error("naive stand-in unexpectedly perfect")
	}
}

func TestRunUnknownMethod(t *testing.T) {
	in := methodInput()
	o := Run(Method("nonsense"), in, DefaultRunOptions())
	if len(o.Reclaimed.Rows) != 0 {
		t.Error("unknown method should return an empty table")
	}
}

func TestAggregateOutcomes(t *testing.T) {
	outs := []Outcome{
		{Report: metrics.Report{EIS: 1, Recall: 1, Precision: 1, PerfectReclamation: true}, Runtime: time.Millisecond},
		{Report: metrics.Report{EIS: 0.5, Recall: 0.5}, Runtime: 3 * time.Millisecond, TimedOut: true},
	}
	row := aggregateOutcomes(MethodGenT, outs)
	if row.Sources != 2 || row.Perfect != 1 || row.Timeouts != 1 {
		t.Errorf("aggregate wrong: %+v", row)
	}
	if row.Avg.EIS != 0.75 || row.AvgRuntime != 2*time.Millisecond {
		t.Errorf("averages wrong: %+v", row)
	}
}

func TestSharedCandidates(t *testing.T) {
	in := methodInput()
	cands := SharedCandidates(in.Lake, in.Src, DefaultRunOptions().Discovery)
	if len(cands) == 0 {
		t.Fatal("no shared candidates found")
	}
	for _, c := range cands {
		if c == nil || c.NumRows() == 0 {
			t.Error("empty candidate table")
		}
	}
}

func TestRunEffectivenessParallelMatchesSequential(t *testing.T) {
	o := benchmark.DefaultTPTROptions()
	o.Scale.Base = 12
	o.MaxSourceRows = 30
	b, err := benchmark.BuildTPTR("par", o)
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{MethodGenT, MethodALITEPS}
	seq := RunEffectiveness("b", b, methods, DefaultRunOptions())
	popts := DefaultRunOptions()
	popts.Parallel = 4
	par := RunEffectiveness("b", b, methods, popts)
	if len(seq.Rows) != len(par.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range seq.Rows {
		s, p := seq.Rows[i], par.Rows[i]
		if s.Avg.EIS != p.Avg.EIS || s.Avg.Recall != p.Avg.Recall || s.Perfect != p.Perfect {
			t.Errorf("%s: parallel results differ: %+v vs %+v", s.Method, s.Avg, p.Avg)
		}
	}
	if len(seq.Detail) != len(par.Detail) {
		t.Fatal("detail lengths differ")
	}
	for i := range seq.Detail {
		if seq.Detail[i].Source != par.Detail[i].Source || seq.Detail[i].Method != par.Detail[i].Method {
			t.Fatal("detail order not deterministic under parallelism")
		}
	}
}
