package experiments

import (
	"context"
	"fmt"
	"strings"

	"gent/internal/baselines/alite"
	"gent/internal/benchmark"
	"gent/internal/core"
	"gent/internal/lake"
	"gent/internal/matrix"
	"gent/internal/metrics"
	"gent/internal/table"
)

// AblationRow compares two configurations of one design choice.
type AblationRow struct {
	Name    string
	With    metrics.Report
	Without metrics.Report
}

// AblationMatrixEncoding compares Gen-T with three-valued matrices against
// the two-valued strawman of Section V-A2.
func AblationMatrixEncoding(b *benchmark.TPTR, opts RunOptions) AblationRow {
	session := sessionFor(b.Lake)
	run := func(enc matrix.Encoding) metrics.Report {
		cfg := core.DefaultConfig()
		cfg.Discovery = opts.Discovery
		cfg.TraverseWorkers = opts.TraverseWorkers
		cfg.Encoding = enc
		reports := make([]metrics.Report, 0, len(b.Sources))
		for _, src := range b.Sources {
			res, err := session.ReclaimWith(src, cfg)
			if err != nil {
				continue
			}
			reports = append(reports, res.Report)
		}
		return metrics.Average(reports)
	}
	return AblationRow{
		Name:    "three-valued vs two-valued matrices",
		With:    run(matrix.ThreeValued),
		Without: run(matrix.TwoValued),
	}
}

// AblationTraversal compares Gen-T against integrating every candidate
// without Matrix Traversal pruning.
func AblationTraversal(b *benchmark.TPTR, opts RunOptions) AblationRow {
	session := sessionFor(b.Lake)
	run := func(skip bool) metrics.Report {
		cfg := core.DefaultConfig()
		cfg.Discovery = opts.Discovery
		cfg.TraverseWorkers = opts.TraverseWorkers
		cfg.SkipTraversal = skip
		reports := make([]metrics.Report, 0, len(b.Sources))
		for _, src := range b.Sources {
			res, err := session.ReclaimWith(src, cfg)
			if err != nil {
				continue
			}
			reports = append(reports, res.Report)
		}
		return metrics.Average(reports)
	}
	return AblationRow{
		Name:    "matrix-traversal pruning vs integrate-all",
		With:    run(false),
		Without: run(true),
	}
}

// AblationDiversify compares discovery with and without Algorithm 4's
// candidate diversification, on a duplicate-heavy version of the lake —
// public lakes hold many copies of the same tables (Example 9), and that is
// the regime diversification exists for: without it, duplicates crowd the
// candidate cap.
func AblationDiversify(b *benchmark.TPTR, opts RunOptions) AblationRow {
	dupLake := lakeWithDuplicates(b)
	session := core.NewReclaimer(dupLake, core.DefaultConfig())
	run := func(diversify bool) metrics.Report {
		cfg := core.DefaultConfig()
		cfg.Discovery = opts.Discovery
		cfg.TraverseWorkers = opts.TraverseWorkers
		// Diversification and subsumed-candidate removal are Algorithm 3's
		// two redundancy controls; the ablation removes both.
		cfg.Discovery.Diversify = diversify
		cfg.Discovery.RemoveSubsumed = diversify
		// A tight candidate cap makes crowding observable at small scale.
		cfg.Discovery.MaxCandidates = 10
		reports := make([]metrics.Report, 0, len(b.Sources))
		for _, src := range b.Sources {
			res, err := session.ReclaimWith(src, cfg)
			if err != nil {
				continue
			}
			reports = append(reports, res.Report)
		}
		return metrics.Average(reports)
	}
	return AblationRow{
		Name:    "diversified vs raw candidate ranking (duplicate-heavy lake)",
		With:    run(true),
		Without: run(false),
	}
}

// lakeWithDuplicates clones a benchmark lake and adds two exact copies of
// every nullified variant (the tables worth crowding out).
func lakeWithDuplicates(b *benchmark.TPTR) *lake.Lake {
	out := lake.New()
	var muts []lake.Mutation
	for _, t := range b.Lake.Tables() {
		muts = append(muts, lake.Put(t))
		if strings.Contains(t.Name, "_err") {
			for i := 1; i <= 2; i++ {
				cp := t.Clone()
				cp.Name = fmt.Sprintf("%s_copy%d", t.Name, i)
				muts = append(muts, lake.Put(cp))
			}
		}
	}
	if _, err := out.Apply(context.Background(), muts...); err != nil {
		panic(err) // clones of lake members always apply cleanly
	}
	return out
}

// AblationGuardedOps compares Algorithm 2's guarded κ/β integration against
// unconditional full disjunction over the same originating tables.
func AblationGuardedOps(b *benchmark.TPTR, opts RunOptions) AblationRow {
	session := sessionFor(b.Lake)
	cfg := core.DefaultConfig()
	cfg.Discovery = opts.Discovery
	cfg.TraverseWorkers = opts.TraverseWorkers
	withReports := make([]metrics.Report, 0, len(b.Sources))
	withoutReports := make([]metrics.Report, 0, len(b.Sources))
	for _, src := range b.Sources {
		res, err := session.ReclaimWith(src, cfg)
		if err != nil {
			continue
		}
		withReports = append(withReports, res.Report)
		origs := make([]*table.Table, len(res.Originating))
		for i, c := range res.Originating {
			origs[i] = c.Table
		}
		fd := alite.IntegratePS(src, origs, alite.Options{MaxRows: opts.FDMaxRows})
		withoutReports = append(withoutReports, metrics.Evaluate(src, fd.Table))
	}
	return AblationRow{
		Name:    "guarded κ/β vs unconditional full disjunction",
		With:    metrics.Average(withReports),
		Without: metrics.Average(withoutReports),
	}
}
