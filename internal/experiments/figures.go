package experiments

import (
	"time"

	"gent/internal/benchmark"
	"gent/internal/metrics"
)

// Fig6Row is one bar of Figure 6: a method's average recall and precision on
// one query class of one benchmark.
type Fig6Row struct {
	Benchmark string
	Class     benchmark.QueryClass
	Method    Method
	Recall    float64
	Precision float64
	Sources   int
}

// Figure6 breaks effectiveness down by the query class that produced each
// Source Table, for each TP-TR benchmark.
func Figure6(set *BenchmarkSet, methods []Method, opts RunOptions) []Fig6Row {
	benches := []*benchmark.TPTR{set.Small, set.Med, set.Large}
	var out []Fig6Row
	for _, b := range benches {
		classOf := make(map[string]benchmark.QueryClass)
		for i, q := range b.Queries {
			classOf[b.Sources[i].Name] = q.Class
		}
		res := RunEffectiveness(b.Name, b, methods, opts)
		type acc struct {
			rec, pre float64
			n        int
		}
		agg := make(map[benchmark.QueryClass]map[Method]*acc)
		for _, d := range res.Detail {
			c := classOf[d.Source]
			if agg[c] == nil {
				agg[c] = make(map[Method]*acc)
			}
			a := agg[c][d.Method]
			if a == nil {
				a = &acc{}
				agg[c][d.Method] = a
			}
			a.rec += d.Report.Recall
			a.pre += d.Report.Precision
			a.n++
		}
		for _, c := range []benchmark.QueryClass{benchmark.ClassPSU, benchmark.ClassOneJoin, benchmark.ClassMultiJoin} {
			for _, m := range methods {
				if a := agg[c][m]; a != nil && a.n > 0 {
					out = append(out, Fig6Row{
						Benchmark: b.Name, Class: c, Method: m,
						Recall:    a.rec / float64(a.n),
						Precision: a.pre / float64(a.n),
						Sources:   a.n,
					})
				}
			}
		}
	}
	return out
}

// Fig7Point is one point of Figure 7: Gen-T's precision at one injected
// noise percentage.
type Fig7Point struct {
	// Sweep is "erroneous" or "nullified" — which rate is being varied.
	Sweep     string
	Percent   int
	Precision float64
	EIS       float64
}

// Figure7 sweeps the percentage of erroneous values (nulls fixed at 50%) and
// the percentage of nullified values (errors fixed at 50%) and reports
// Gen-T's precision, reproducing the two lines of Figure 7.
func Figure7(base SetOptions, percents []int, opts RunOptions) ([]Fig7Point, error) {
	if len(percents) == 0 {
		percents = []int{10, 30, 50, 70, 90}
	}
	var out []Fig7Point
	run := func(sweep string, pct int, nullRate, errRate float64) error {
		o := benchmark.DefaultTPTROptions()
		o.Scale.Base = base.MedBase
		o.Scale.Seed = base.Seed
		o.Seed = base.Seed
		o.NullRate = nullRate
		o.ErrRate = errRate
		o.MaxSourceRows = base.MaxSourceRows
		b, err := benchmark.BuildTPTR("fig7", o)
		if err != nil {
			return err
		}
		res := RunEffectiveness(b.Name, b, []Method{MethodGenT}, opts)
		out = append(out, Fig7Point{
			Sweep:     sweep,
			Percent:   pct,
			Precision: res.Rows[0].Avg.Precision,
			EIS:       res.Rows[0].Avg.EIS,
		})
		return nil
	}
	for _, pct := range percents {
		if err := run("erroneous", pct, 0.5, float64(pct)/100); err != nil {
			return nil, err
		}
	}
	for _, pct := range percents {
		if err := run("nullified", pct, float64(pct)/100, 0.5); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Fig8Row is one bar pair of Figure 8: a method's average runtime and
// output-size ratio on one benchmark.
type Fig8Row struct {
	Benchmark    string
	Method       Method
	AvgRuntime   time.Duration
	AvgSizeRatio float64
	Timeouts     int
}

// Figure8 measures scalability: average runtimes (8a) and output-size ratios
// (8b) across the four TP-TR-based benchmarks. Methods that the paper could
// only run on Small are likewise restricted here.
func Figure8(set *BenchmarkSet, opts RunOptions) []Fig8Row {
	var out []Fig8Row
	collect := func(res EffectivenessResult) {
		for _, row := range res.Rows {
			out = append(out, Fig8Row{
				Benchmark:    res.Benchmark,
				Method:       row.Method,
				AvgRuntime:   row.AvgRuntime,
				AvgSizeRatio: row.AvgSizeRatio,
				Timeouts:     row.Timeouts,
			})
		}
	}
	smallMethods := []Method{MethodALITE, MethodALITEPS, MethodAutoPipeline, MethodGenT}
	medMethods := []Method{MethodALITE, MethodALITEPS, MethodGenT}
	largeMethods := []Method{MethodALITEPS, MethodGenT}
	santosOpts := opts
	santosOpts.Discovery.FirstStageTopK = 60
	collect(RunEffectiveness("TP-TR Small", set.Small, smallMethods, opts))
	collect(RunEffectiveness("TP-TR Med", set.Med, medMethods, opts))
	collect(RunEffectiveness("SANTOS Large+TP-TR Med", set.SantosMed, medMethods, santosOpts))
	collect(RunEffectiveness("TP-TR Large", set.Large, largeMethods, opts))
	return out
}

// Fig9Row is one source's scores for Gen-T and ALITE-PS on TP-TR Med.
type Fig9Row struct {
	Source string
	GenT   metrics.Report
	ALITE  metrics.Report
}

// Figure9 reproduces the per-source breakdown of Gen-T vs ALITE-PS.
func Figure9(set *BenchmarkSet, opts RunOptions) []Fig9Row {
	res := RunEffectiveness("TP-TR Med", set.Med, []Method{MethodGenT, MethodALITEPS}, opts)
	bySource := make(map[string]*Fig9Row)
	var order []string
	for _, d := range res.Detail {
		row := bySource[d.Source]
		if row == nil {
			row = &Fig9Row{Source: d.Source}
			bySource[d.Source] = row
			order = append(order, d.Source)
		}
		switch d.Method {
		case MethodGenT:
			row.GenT = d.Report
		case MethodALITEPS:
			row.ALITE = d.Report
		}
	}
	out := make([]Fig9Row, 0, len(order))
	for _, s := range order {
		out = append(out, *bySource[s])
	}
	return out
}
