// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI): the effectiveness tables (II, III, IV), the
// query-class breakdown (Figure 6), the noise ablation (Figure 7), the
// scalability study (Figure 8), the per-source breakdown (Figure 9), the
// T2D generalizability study, and the appendix LLM baseline — all over the
// synthetic benchmark suites of internal/benchmark.
package experiments

import (
	"context"
	"errors"
	"sync"
	"time"

	"gent/internal/baselines/alite"
	"gent/internal/baselines/autopipeline"
	"gent/internal/baselines/naive"
	"gent/internal/baselines/ver"
	"gent/internal/core"
	"gent/internal/discovery"
	"gent/internal/lake"
	"gent/internal/metrics"
	"gent/internal/table"
)

// Method identifies one system under evaluation.
type Method string

// The evaluated methods, named as the paper's tables name them.
const (
	MethodGenT               Method = "Gen-T"
	MethodALITE              Method = "ALITE"
	MethodALITEIntSet        Method = "ALITE w/ int. set"
	MethodALITEPS            Method = "ALITE-PS"
	MethodALITEPSIntSet      Method = "ALITE-PS w/ int. set"
	MethodAutoPipeline       Method = "Auto-Pipeline*"
	MethodAutoPipelineIntSet Method = "Auto-Pipeline* w/ int. set"
	MethodVerIntSet          Method = "Ver w/ int. set"
	MethodNaiveLLM           Method = "ChatGPT* (naive stand-in)"
)

// RunOptions bound the methods, standing in for the paper's wall-clock
// timeouts.
type RunOptions struct {
	// Discovery configures Gen-T's (and the shared candidate retrieval's)
	// table discovery.
	Discovery discovery.Options
	// FDMaxRows bounds full disjunction's intermediate size for the ALITE
	// variants.
	FDMaxRows int
	// AP bounds the Auto-Pipeline* search.
	AP autopipeline.Options
	// Parallel runs that many sources concurrently in RunEffectiveness
	// (<= 1 is sequential). All pipeline stages are read-only over the
	// lake, so source-level parallelism is safe. Per-source runtimes stay
	// meaningful; wall-clock totals do not, so keep it at 1 when measuring
	// Figure 8.
	Parallel int
	// TraverseWorkers bounds Gen-T's Matrix Traversal engine per source
	// (core.Config.TraverseWorkers); <= 0 uses GOMAXPROCS. Set to 1 when
	// Parallel already saturates the CPU.
	TraverseWorkers int
}

// DefaultRunOptions sizes the budgets for the scaled-down benchmarks. The
// full-disjunction row budget is deliberately tight: ALITE's closure is
// worst-case exponential and the paper likewise runs it under wall-clock
// timeouts.
func DefaultRunOptions() RunOptions {
	return RunOptions{
		Discovery: discovery.DefaultOptions(),
		FDMaxRows: 4000,
		AP:        autopipeline.DefaultOptions(),
	}
}

// Input is one reclamation task: a source, its lake, the shared candidate
// tables from Set Similarity, and (when available) the known integrating
// set.
type Input struct {
	Src        *table.Table
	Lake       *lake.Lake
	Candidates []*table.Table
	IntSet     []*table.Table
	// Session, when set, is the corpus's shared Reclaimer; Gen-T runs reuse
	// its indexes instead of rebuilding them per query.
	Session *core.Reclaimer
}

// sessions caches one Reclaimer per corpus lake, so every experiment and
// every query over a corpus shares one pair of discovery substrates — the
// paper's build-once-query-many deployment. Sessions survive for the life of
// the experiments process, which is the intended trade: the index memory buys
// back per-query indexing time.
var sessions sync.Map // *lake.Lake -> *core.Reclaimer

// sessionFor returns the corpus's shared session, creating it on first use.
func sessionFor(l *lake.Lake) *core.Reclaimer {
	if s, ok := sessions.Load(l); ok {
		return s.(*core.Reclaimer)
	}
	s, _ := sessions.LoadOrStore(l, core.NewReclaimer(l, core.DefaultConfig()))
	return s.(*core.Reclaimer)
}

// Outcome is one method's result on one input.
type Outcome struct {
	Reclaimed *table.Table
	Report    metrics.Report
	Runtime   time.Duration
	TimedOut  bool
	// Originating counts the tables the method integrated (where defined).
	Originating int
}

// SharedCandidates runs Table Discovery once so every method sees the same
// candidate set, as in the paper's setup. The corpus's shared session serves
// the retrieval, so the lake is indexed once across all sources and methods.
func SharedCandidates(l *lake.Lake, src *table.Table, opts discovery.Options) []*table.Table {
	return sessionCandidates(context.Background(), sessionFor(l), src, opts)
}

// sessionCandidates is SharedCandidates over an explicit session and
// context; a canceled retrieval yields an empty candidate set (the methods
// then score as failures, keeping the result shape).
func sessionCandidates(ctx context.Context, s *core.Reclaimer, src *table.Table, opts discovery.Options) []*table.Table {
	cands, err := s.CandidatesContext(ctx, src, opts)
	if err != nil {
		return nil
	}
	out := make([]*table.Table, len(cands))
	for i, c := range cands {
		out[i] = c.Table
	}
	return out
}

// Run executes one method on one input. It is RunContext under
// context.Background().
func Run(m Method, in Input, opts RunOptions) Outcome {
	return RunContext(context.Background(), m, in, opts)
}

// RunContext is Run under a context. Gen-T runs on the context-first session
// API and aborts at its phase boundaries when ctx is canceled or expires —
// the run then scores as a failure (all-null output), mirroring how the
// paper treats timed-out systems. The baselines are not preemptible.
func RunContext(ctx context.Context, m Method, in Input, opts RunOptions) Outcome {
	start := time.Now()
	var out *table.Table
	timedOut := false
	origN := 0

	switch m {
	case MethodGenT:
		session := in.Session
		if session == nil {
			session = sessionFor(in.Lake)
		}
		// The run is pinned to the paper's configuration (plus the
		// experiment's knobs) regardless of how the session was configured —
		// cfg replaces, options would layer.
		cfg := core.DefaultConfig()
		cfg.Discovery = opts.Discovery
		cfg.TraverseWorkers = opts.TraverseWorkers
		res, err := session.ReclaimWithContext(ctx, in.Src, cfg)
		if err != nil {
			out = table.New("failed").PadNullColumns(in.Src.Cols)
			timedOut = errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		} else {
			out = res.Reclaimed
			origN = len(res.Originating)
		}
	case MethodALITE:
		r := alite.Integrate(in.Src, in.Candidates, alite.Options{MaxRows: opts.FDMaxRows})
		out, timedOut = r.Table, r.TimedOut
		origN = len(in.Candidates)
	case MethodALITEIntSet:
		r := alite.Integrate(in.Src, in.IntSet, alite.Options{MaxRows: opts.FDMaxRows})
		out, timedOut = r.Table, r.TimedOut
		origN = len(in.IntSet)
	case MethodALITEPS:
		r := alite.IntegratePS(in.Src, in.Candidates, alite.Options{MaxRows: opts.FDMaxRows})
		out, timedOut = r.Table, r.TimedOut
		origN = len(in.Candidates)
	case MethodALITEPSIntSet:
		r := alite.IntegratePS(in.Src, in.IntSet, alite.Options{MaxRows: opts.FDMaxRows})
		out, timedOut = r.Table, r.TimedOut
		origN = len(in.IntSet)
	case MethodAutoPipeline:
		r := autopipeline.Synthesize(in.Src, in.Candidates, opts.AP)
		out, timedOut = r.Table, r.TimedOut
	case MethodAutoPipelineIntSet:
		r := autopipeline.Synthesize(in.Src, in.IntSet, opts.AP)
		out, timedOut = r.Table, r.TimedOut
	case MethodVerIntSet:
		out = ver.Discover(in.Src, in.IntSet, ver.DefaultOptions())
	case MethodNaiveLLM:
		out = naive.Integrate(in.Src, in.IntSet, naive.Options{})
	default:
		out = table.New("unknown").PadNullColumns(in.Src.Cols)
	}

	rt := time.Since(start)
	return Outcome{
		Reclaimed:   out,
		Report:      metrics.Evaluate(in.Src, out),
		Runtime:     rt,
		TimedOut:    timedOut,
		Originating: origN,
	}
}
