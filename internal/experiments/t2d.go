package experiments

import (
	"context"

	"gent/internal/benchmark"
	"gent/internal/core"
	"gent/internal/lake"
	"gent/internal/table"
)

// Table4 reproduces Table IV: the T2D-Gold-style sources immersed in the
// WDC-style corpus, comparing ALITE, ALITE-PS, Auto-Pipeline* and Gen-T on
// the sources for which every method produces non-empty output. Each source
// table is removed from the lake while it is being reclaimed, so methods
// must reconstruct it from its vertical splits and duplicates.
func Table4(corpus *benchmark.T2D, opts RunOptions) EffectivenessResult {
	return Table4Context(context.Background(), corpus, opts)
}

// Table4Context is Table4 under a context (cmd/experiments -timeout):
// expired Gen-T runs and retrievals abort and score as failures.
func Table4Context(ctx context.Context, corpus *benchmark.T2D, opts RunOptions) EffectivenessResult {
	methods := []Method{MethodALITE, MethodALITEPS, MethodAutoPipeline, MethodGenT}
	res := EffectivenessResult{Benchmark: "WDC Sample+T2D Gold"}
	perMethod := make(map[Method][]Outcome)

	// Warm the shared session, for the substrates this run's options engage,
	// while the corpus is whole: each iteration's remove/restore lands as a
	// pair of lake epochs, and the session's substrates follow them with
	// small incremental deltas off this warm build.
	session := sessionFor(corpus.Lake).WarmFor(opts.Discovery)

	// The whole corpus is present before the first remove/restore pair, so
	// one pinned snapshot serves every iteration's source lookup.
	snap := corpus.Lake.Snapshot()
	for _, name := range corpus.Reclaimable {
		src := snap.Get(name).Clone()
		key := table.MineKey(src, 2)
		if key == nil {
			continue
		}
		src.Key = key
		corpus.Lake.Apply(ctx, lake.Drop(name))
		cands := sessionCandidates(ctx, session, src, opts.Discovery)
		in := Input{Src: src, Lake: corpus.Lake, Candidates: cands, IntSet: cands, Session: session}
		outcomes := make(map[Method]Outcome, len(methods))
		nonEmpty := true
		for _, m := range methods {
			o := RunContext(ctx, m, in, opts)
			outcomes[m] = o
			if len(o.Reclaimed.Rows) == 0 {
				nonEmpty = false
			}
		}
		restore(corpus, name, src)
		if !nonEmpty {
			continue // Table IV reports only commonly non-empty sources
		}
		for _, m := range methods {
			perMethod[m] = append(perMethod[m], outcomes[m])
			res.Detail = append(res.Detail, PerSource{
				Source: name, Method: m, Report: outcomes[m].Report, Runtime: outcomes[m].Runtime,
			})
		}
	}
	for _, m := range methods {
		res.Rows = append(res.Rows, aggregateOutcomes(m, perMethod[m]))
	}
	return res
}

// T2DSelfResult summarizes the Section VI-D generalizability study.
type T2DSelfResult struct {
	SourcesTried        int
	PerfectReclamations int
	DuplicatesFound     int
	// MultiTable counts perfect reclamations that integrated >= 2 tables.
	MultiTable int
}

// T2DSelfReclamation iterates every corpus table as a potential source (as
// Section VI-D does with the 515 T2D Gold tables), reclaiming each from the
// remaining corpus.
func T2DSelfReclamation(corpus *benchmark.T2D, opts RunOptions) T2DSelfResult {
	var out T2DSelfResult
	cfg := core.DefaultConfig()
	cfg.Discovery = opts.Discovery
	cfg.TraverseWorkers = opts.TraverseWorkers
	// One warm session (for this run's options) serves all |corpus|
	// leave-one-out queries; each remove/restore is an epoch pair the
	// substrates follow incrementally.
	session := sessionFor(corpus.Lake).WarmFor(opts.Discovery)
	// Pin the whole corpus once: every leave-one-out iteration reads its
	// source from this snapshot, no matter where the remove/restore churn is.
	snap := corpus.Lake.Snapshot()
	for _, name := range snap.Names() {
		src := snap.Get(name).Clone()
		key := table.MineKey(src, 2)
		if key == nil {
			continue
		}
		src.Key = key
		corpus.Lake.Apply(context.Background(), lake.Drop(name))
		out.SourcesTried++
		res, err := session.ReclaimWith(src, cfg)
		restore(corpus, name, src)
		if err != nil {
			continue
		}
		if res.Report.PerfectReclamation {
			out.PerfectReclamations++
			if len(res.Originating) >= 2 {
				out.MultiTable++
			} else if len(res.Originating) == 1 {
				out.DuplicatesFound++
			}
		}
	}
	return out
}

// restore puts a removed source table back into the corpus lake.
func restore(corpus *benchmark.T2D, name string, src *table.Table) {
	if corpus.Lake.Snapshot().Get(name) == nil {
		back := src.Clone()
		back.Name = name
		back.Key = nil
		if _, err := corpus.Lake.Apply(context.Background(), lake.Put(back)); err != nil {
			panic(err) // a clone of a former member always applies cleanly
		}
	}
}
