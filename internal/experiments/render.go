package experiments

import (
	"fmt"
	"strings"
	"time"
)

// RenderTable1 prints benchmark statistics like Table I.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %8s %8s %10s %10s\n", "Benchmark", "#Tables", "#Cols", "AvgRows", "Size(MB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %8d %8d %10.1f %10.2f\n",
			r.Benchmark, r.Stats.Tables, r.Stats.Cols, r.Stats.AvgRows,
			float64(r.Stats.SizeBytes)/(1<<20))
	}
	return b.String()
}

// RenderEffectiveness prints one benchmark's method comparison like Tables
// II–IV.
func RenderEffectiveness(res EffectivenessResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s (%d sources) ==\n", res.Benchmark, sourcesOf(res))
	fmt.Fprintf(&b, "%-28s %6s %6s %9s %8s %8s %8s %8s\n",
		"Method", "Rec", "Pre", "Inst-Div", "DKL", "EIS", "Perfect", "Timeout")
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "%-28s %6.3f %6.3f %9.3f %8.3f %8.3f %8d %8d\n",
			row.Method, row.Avg.Recall, row.Avg.Precision, row.Avg.InstDiv,
			row.Avg.DKL, row.Avg.EIS, row.Perfect, row.Timeouts)
	}
	return b.String()
}

func sourcesOf(res EffectivenessResult) int {
	if len(res.Rows) == 0 {
		return 0
	}
	return res.Rows[0].Sources
}

// RenderFigure6 prints the query-class breakdown.
func RenderFigure6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-26s %-28s %6s %6s\n", "Benchmark", "QueryClass", "Method", "Rec", "Pre")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-26s %-28s %6.3f %6.3f\n",
			r.Benchmark, r.Class, r.Method, r.Recall, r.Precision)
	}
	return b.String()
}

// RenderFigure7 prints the noise sweep.
func RenderFigure7(points []Fig7Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %10s %8s\n", "Sweep", "Percent", "Precision", "EIS")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %7d%% %10.3f %8.3f\n", p.Sweep, p.Percent, p.Precision, p.EIS)
	}
	return b.String()
}

// RenderFigure8 prints the scalability study.
func RenderFigure8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-28s %12s %10s %8s\n", "Benchmark", "Method", "AvgRuntime", "SizeRatio", "Timeout")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-28s %12s %10.2f %8d\n",
			r.Benchmark, r.Method, r.AvgRuntime.Round(timeUnit(r.AvgRuntime)), r.AvgSizeRatio, r.Timeouts)
	}
	return b.String()
}

// RenderFigure9 prints the per-source breakdown.
func RenderFigure9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %18s %18s %18s\n", "Source", "Recall(G/A)", "Precision(G/A)", "F1(G/A)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %8.3f/%8.3f %8.3f/%8.3f %8.3f/%8.3f\n",
			r.Source, r.GenT.Recall, r.ALITE.Recall,
			r.GenT.Precision, r.ALITE.Precision,
			r.GenT.F1, r.ALITE.F1)
	}
	return b.String()
}

// RenderT2DSelf prints the generalizability summary.
func RenderT2DSelf(r T2DSelfResult) string {
	return fmt.Sprintf(
		"sources tried: %d\nperfect reclamations: %d (multi-table: %d, via duplicate: %d)\n",
		r.SourcesTried, r.PerfectReclamations, r.MultiTable, r.DuplicatesFound)
}

// RenderAblation prints one design-choice comparison.
func RenderAblation(a AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== ablation: %s ==\n", a.Name)
	fmt.Fprintf(&b, "%-10s %6s %6s %8s %8s\n", "", "Rec", "Pre", "EIS", "DKL")
	fmt.Fprintf(&b, "%-10s %6.3f %6.3f %8.3f %8.3f\n", "with", a.With.Recall, a.With.Precision, a.With.EIS, a.With.DKL)
	fmt.Fprintf(&b, "%-10s %6.3f %6.3f %8.3f %8.3f\n", "without", a.Without.Recall, a.Without.Precision, a.Without.EIS, a.Without.DKL)
	return b.String()
}

func timeUnit(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return 10 * time.Millisecond
	case d > time.Millisecond:
		return 100 * time.Microsecond
	default:
		return time.Microsecond
	}
}
