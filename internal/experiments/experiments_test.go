package experiments

import (
	"strings"
	"testing"

	"gent/internal/benchmark"
)

// tinySet builds the smallest useful benchmark set for test time.
func tinySet(t *testing.T) *BenchmarkSet {
	t.Helper()
	o := DefaultSetOptions()
	o.SmallBase = 16
	o.MedBase = 30
	o.LargeBase = 40
	o.Distractors = 30
	o.T2DTables = 30
	o.WDCTables = 60
	o.MaxSourceRows = 60
	set, err := BuildSet(o)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestTable1Stats(t *testing.T) {
	set := tinySet(t)
	rows := Table1(set)
	if len(rows) != 6 {
		t.Fatalf("Table I needs 6 benchmarks, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Stats.Tables == 0 {
			t.Errorf("%s is empty", r.Benchmark)
		}
	}
	if out := RenderTable1(rows); !strings.Contains(out, "TP-TR Small") {
		t.Error("render missing benchmark name")
	}
}

func TestTable3HeadlineShape(t *testing.T) {
	// The paper's headline: Gen-T outperforms every baseline on TP-TR Small
	// in precision and EIS, and reclaims the most sources perfectly.
	set := tinySet(t)
	res := Table3(set, DefaultRunOptions())
	byMethod := make(map[Method]MethodScores)
	for _, row := range res.Rows {
		byMethod[row.Method] = row
	}
	gent := byMethod[MethodGenT]
	if gent.Sources == 0 {
		t.Fatal("Gen-T ran on no sources")
	}
	for m, row := range byMethod {
		if m == MethodGenT {
			continue
		}
		if row.Avg.Precision > gent.Avg.Precision+1e-9 {
			t.Errorf("%s precision %.3f beats Gen-T %.3f", m, row.Avg.Precision, gent.Avg.Precision)
		}
		if row.Perfect > gent.Perfect {
			t.Errorf("%s perfectly reclaims %d > Gen-T %d", m, row.Perfect, gent.Perfect)
		}
	}
	if gent.Avg.Recall < 0.5 {
		t.Errorf("Gen-T recall %.3f unexpectedly low", gent.Avg.Recall)
	}
	t.Logf("\n%s", RenderEffectiveness(res))
}

func TestFigure7Shape(t *testing.T) {
	o := DefaultSetOptions()
	o.MedBase = 24
	o.MaxSourceRows = 40
	points, err := Figure7(o, []int{10, 90}, DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expected 4 sweep points, got %d", len(points))
	}
	var by = map[string]map[int]Fig7Point{}
	for _, p := range points {
		if by[p.Sweep] == nil {
			by[p.Sweep] = map[int]Fig7Point{}
		}
		by[p.Sweep][p.Percent] = p
	}
	// Paper's shape: more nullified values → precision declines (or at
	// least does not improve).
	if by["nullified"][90].Precision > by["nullified"][10].Precision+0.05 {
		t.Errorf("precision should not rise with more nulls: %v vs %v",
			by["nullified"][90].Precision, by["nullified"][10].Precision)
	}
	t.Logf("\n%s", RenderFigure7(points))
}

func TestTable4AndT2DSelf(t *testing.T) {
	corpus := benchmark.BuildT2D(40, 4, 2, 23)
	res := Table4(corpus, DefaultRunOptions())
	if len(res.Rows) == 0 {
		t.Fatal("Table IV produced no rows")
	}
	byMethod := make(map[Method]MethodScores)
	for _, row := range res.Rows {
		byMethod[row.Method] = row
	}
	if g, a := byMethod[MethodGenT], byMethod[MethodALITE]; g.Avg.Precision < a.Avg.Precision {
		t.Errorf("Gen-T precision %.3f below ALITE %.3f on T2D", g.Avg.Precision, a.Avg.Precision)
	}
	t.Logf("\n%s", RenderEffectiveness(res))

	self := T2DSelfReclamation(corpus, DefaultRunOptions())
	if self.SourcesTried == 0 {
		t.Fatal("no sources tried")
	}
	if self.PerfectReclamations < 4 {
		t.Errorf("expected at least the 4 derivable tables reclaimed, got %d", self.PerfectReclamations)
	}
	t.Logf("\n%s", RenderT2DSelf(self))
}

func TestAblations(t *testing.T) {
	o := benchmark.DefaultTPTROptions()
	o.Scale.Base = 20
	o.MaxSourceRows = 40
	b, err := benchmark.BuildTPTR("ablation", o)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultRunOptions()

	enc := AblationMatrixEncoding(b, opts)
	if enc.With.EIS+1e-9 < enc.Without.EIS {
		t.Errorf("three-valued EIS %.3f below two-valued %.3f", enc.With.EIS, enc.Without.EIS)
	}
	trav := AblationTraversal(b, opts)
	if trav.With.Precision+1e-9 < trav.Without.Precision {
		t.Errorf("traversal pruning lowered precision: %.3f vs %.3f",
			trav.With.Precision, trav.Without.Precision)
	}
	div := AblationDiversify(b, opts)
	guard := AblationGuardedOps(b, opts)
	if guard.With.EIS+1e-9 < guard.Without.EIS {
		t.Errorf("guarded integration EIS %.3f below plain FD %.3f",
			guard.With.EIS, guard.Without.EIS)
	}
	for _, a := range []AblationRow{enc, trav, div, guard} {
		t.Logf("\n%s", RenderAblation(a))
	}
}
