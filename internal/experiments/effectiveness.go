package experiments

import (
	"context"
	"sync"
	"time"

	"gent/internal/benchmark"
	"gent/internal/core"
	"gent/internal/lake"
	"gent/internal/metrics"
)

// MethodScores aggregates one method's results over a benchmark's sources —
// one row of Tables II/III/IV.
type MethodScores struct {
	Method  Method
	Avg     metrics.Report
	Perfect int
	// AvgRuntime and AvgSizeRatio feed Figure 8.
	AvgRuntime   time.Duration
	AvgSizeRatio float64
	Timeouts     int
	Sources      int
}

// PerSource records one method's score on one source — the grain Figure 9
// plots.
type PerSource struct {
	Source  string
	Method  Method
	Report  metrics.Report
	Runtime time.Duration
}

// EffectivenessResult is one benchmark's full method comparison.
type EffectivenessResult struct {
	Benchmark string
	Rows      []MethodScores
	Detail    []PerSource
}

// RunEffectiveness evaluates the given methods on every source of a TP-TR
// benchmark, sharing one Set Similarity candidate set per source and one
// Reclaimer session — hence one pair of discovery indexes — across the whole
// corpus. With opts.Parallel > 1, sources run concurrently; results stay in
// source order either way. It is RunEffectivenessContext under
// context.Background().
func RunEffectiveness(name string, b *benchmark.TPTR, methods []Method, opts RunOptions) EffectivenessResult {
	return RunEffectivenessContext(context.Background(), name, b, methods, opts)
}

// RunEffectivenessContext is RunEffectiveness under a context — the whole
// suite can be deadlined (cmd/experiments -timeout). Gen-T runs abort at
// their phase boundaries once ctx expires and score as failures; every
// source still gets a row, so the tables keep their shape.
func RunEffectivenessContext(ctx context.Context, name string, b *benchmark.TPTR, methods []Method, opts RunOptions) EffectivenessResult {
	res := EffectivenessResult{Benchmark: name}
	session := sessionFor(b.Lake)

	outs := make([]map[Method]Outcome, len(b.Sources))
	runSource := func(i int) {
		src := b.Sources[i]
		cands := sessionCandidates(ctx, session, src, opts.Discovery)
		in := Input{
			Src:        src,
			Lake:       b.Lake,
			Candidates: cands,
			IntSet:     b.IntegratingTables(src.Name),
			Session:    session,
		}
		byMethod := make(map[Method]Outcome, len(methods))
		for _, m := range methods {
			byMethod[m] = RunContext(ctx, m, in, opts)
		}
		outs[i] = byMethod
	}

	if workers := opts.Parallel; workers > 1 {
		// Source-level fan-out already saturates the CPU: unless the caller
		// pinned a traversal pool, split the cores between the two levels so
		// concurrent sources do not each spin a GOMAXPROCS traversal engine.
		if opts.TraverseWorkers <= 0 {
			eff := workers
			if eff > len(b.Sources) {
				eff = len(b.Sources)
			}
			if eff < 1 {
				eff = 1
			}
			opts.TraverseWorkers = core.SplitTraverseWorkers(eff)
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range b.Sources {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				runSource(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range b.Sources {
			runSource(i)
		}
	}

	perMethod := make(map[Method][]Outcome)
	for i, src := range b.Sources {
		for _, m := range methods {
			o := outs[i][m]
			perMethod[m] = append(perMethod[m], o)
			res.Detail = append(res.Detail, PerSource{
				Source: src.Name, Method: m, Report: o.Report, Runtime: o.Runtime,
			})
		}
	}
	for _, m := range methods {
		res.Rows = append(res.Rows, aggregateOutcomes(m, perMethod[m]))
	}
	return res
}

// aggregateOutcomes folds one method's outcomes into a table row.
func aggregateOutcomes(m Method, outs []Outcome) MethodScores {
	row := MethodScores{Method: m, Sources: len(outs)}
	reports := make([]metrics.Report, 0, len(outs))
	var totalRT time.Duration
	for _, o := range outs {
		reports = append(reports, o.Report)
		totalRT += o.Runtime
		if o.Report.PerfectReclamation {
			row.Perfect++
		}
		if o.TimedOut {
			row.Timeouts++
		}
	}
	row.Avg = metrics.Average(reports)
	if len(outs) > 0 {
		row.AvgRuntime = totalRT / time.Duration(len(outs))
	}
	row.AvgSizeRatio = row.Avg.SizeRatio
	return row
}

// BenchmarkSet bundles the benchmarks the paper evaluates on, at a chosen
// scale.
type BenchmarkSet struct {
	Small     *benchmark.TPTR
	Med       *benchmark.TPTR
	Large     *benchmark.TPTR
	SantosMed *benchmark.TPTR // Med embedded in a distractor lake
	T2D       *benchmark.T2D
	// WDC is the T2D corpus embedded among many more distractor web tables.
	WDC *benchmark.T2D
}

// SetOptions size the benchmark set. The defaults are scaled down so the
// full suite runs in test time; cmd/experiments exposes flags to raise them
// toward the paper's sizes.
type SetOptions struct {
	SmallBase, MedBase, LargeBase int
	Distractors                   int
	T2DTables, WDCTables          int
	MaxSourceRows                 int
	NullRate, ErrRate             float64
	Seed                          int64
}

// DefaultSetOptions are the test-time sizes.
func DefaultSetOptions() SetOptions {
	return SetOptions{
		SmallBase: 24, MedBase: 80, LargeBase: 200,
		Distractors: 120,
		T2DTables:   80, WDCTables: 300,
		MaxSourceRows: 120,
		NullRate:      0.5, ErrRate: 0.5,
		Seed: 17,
	}
}

// BuildSet constructs all benchmarks.
func BuildSet(o SetOptions) (*BenchmarkSet, error) {
	mk := func(name string, base int) (*benchmark.TPTR, error) {
		opts := benchmark.DefaultTPTROptions()
		opts.Scale.Base = base
		opts.Scale.Seed = o.Seed
		opts.Seed = o.Seed
		opts.NullRate = o.NullRate
		opts.ErrRate = o.ErrRate
		opts.MaxSourceRows = o.MaxSourceRows
		return benchmark.BuildTPTR(name, opts)
	}
	var set BenchmarkSet
	var err error
	if set.Small, err = mk("TP-TR Small", o.SmallBase); err != nil {
		return nil, err
	}
	if set.Med, err = mk("TP-TR Med", o.MedBase); err != nil {
		return nil, err
	}
	if set.Large, err = mk("TP-TR Large", o.LargeBase); err != nil {
		return nil, err
	}
	if set.SantosMed, err = mk("SANTOS Large+TP-TR Med", o.MedBase); err != nil {
		return nil, err
	}
	benchmark.AddDistractors(set.SantosMed.Lake, o.Distractors, 20, o.Seed+1)
	set.T2D = benchmark.BuildT2D(o.T2DTables, 6, 4, o.Seed+2)
	set.WDC = benchmark.BuildT2D(o.T2DTables, 6, 4, o.Seed+2)
	benchmark.AddDistractors(set.WDC.Lake, o.WDCTables-o.T2DTables, 8, o.Seed+3)
	return &set, nil
}

// Table1Row is one row of Table I (benchmark statistics).
type Table1Row struct {
	Benchmark string
	Stats     lake.Stats
}

// Table1 computes the corpus statistics of every benchmark lake.
func Table1(set *BenchmarkSet) []Table1Row {
	rows := []Table1Row{
		{"TP-TR Small", set.Small.Lake.ComputeStats()},
		{"TP-TR Med", set.Med.Lake.ComputeStats()},
		{"TP-TR Large", set.Large.Lake.ComputeStats()},
		{"SANTOS Large+TP-TR Med", set.SantosMed.Lake.ComputeStats()},
		{"T2D Gold", set.T2D.Lake.ComputeStats()},
		{"WDC Sample+T2D Gold", set.WDC.Lake.ComputeStats()},
	}
	return rows
}

// Table2 reproduces Table II: effectiveness of the ALITE variants and Gen-T
// on the larger TP-TR benchmarks. On the Large benchmark plain ALITE is
// omitted, as in the paper (it times out).
func Table2(set *BenchmarkSet, opts RunOptions) []EffectivenessResult {
	return Table2Context(context.Background(), set, opts)
}

// Table2Context is Table2 under a context (cmd/experiments -timeout).
func Table2Context(ctx context.Context, set *BenchmarkSet, opts RunOptions) []EffectivenessResult {
	full := []Method{MethodALITE, MethodALITEIntSet, MethodALITEPS, MethodALITEPSIntSet, MethodGenT}
	noALITE := []Method{MethodALITEPS, MethodALITEPSIntSet, MethodGenT}
	santosOpts := opts
	santosOpts.Discovery.FirstStageTopK = 60
	return []EffectivenessResult{
		RunEffectivenessContext(ctx, "TP-TR Med", set.Med, full, opts),
		RunEffectivenessContext(ctx, "SANTOS Large+TP-TR Med", set.SantosMed, full, santosOpts),
		RunEffectivenessContext(ctx, "TP-TR Large", set.Large, noALITE, opts),
	}
}

// Table3 reproduces Table III: all baselines on TP-TR Small.
func Table3(set *BenchmarkSet, opts RunOptions) EffectivenessResult {
	return Table3Context(context.Background(), set, opts)
}

// Table3Context is Table3 under a context.
func Table3Context(ctx context.Context, set *BenchmarkSet, opts RunOptions) EffectivenessResult {
	methods := []Method{
		MethodALITE, MethodALITEIntSet,
		MethodALITEPS, MethodALITEPSIntSet,
		MethodAutoPipeline, MethodAutoPipelineIntSet,
		MethodVerIntSet,
		MethodGenT,
	}
	return RunEffectivenessContext(ctx, "TP-TR Small", set.Small, methods, opts)
}

// AppendixLLM reproduces Appendix F: the naive LLM stand-in on TP-TR Small
// with the integrating set.
func AppendixLLM(set *BenchmarkSet, opts RunOptions) EffectivenessResult {
	return RunEffectiveness("TP-TR Small", set.Small, []Method{MethodNaiveLLM, MethodGenT}, opts)
}
