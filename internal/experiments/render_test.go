package experiments

import (
	"strings"
	"testing"
	"time"

	"gent/internal/benchmark"
	"gent/internal/metrics"
)

func TestRenderFigure6(t *testing.T) {
	rows := []Fig6Row{{
		Benchmark: "TP-TR Small", Class: benchmark.ClassOneJoin,
		Method: MethodGenT, Recall: 0.9, Precision: 0.8, Sources: 8,
	}}
	out := RenderFigure6(rows)
	for _, want := range []string{"TP-TR Small", "One Join", "Gen-T", "0.900", "0.800"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure7(t *testing.T) {
	out := RenderFigure7([]Fig7Point{
		{Sweep: "erroneous", Percent: 30, Precision: 0.75, EIS: 0.99},
	})
	for _, want := range []string{"erroneous", "30%", "0.750"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure8(t *testing.T) {
	out := RenderFigure8([]Fig8Row{
		{Benchmark: "TP-TR Med", Method: MethodALITE, AvgRuntime: 1500 * time.Millisecond, AvgSizeRatio: 288.1, Timeouts: 26},
		{Benchmark: "TP-TR Med", Method: MethodGenT, AvgRuntime: 51 * time.Millisecond, AvgSizeRatio: 1.2},
	})
	for _, want := range []string{"ALITE", "288.10", "26", "Gen-T", "1.20"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure9AndT2D(t *testing.T) {
	out := RenderFigure9([]Fig9Row{{
		Source: "q00",
		GenT:   metrics.Report{Recall: 1, Precision: 1, F1: 1},
		ALITE:  metrics.Report{Recall: 1, Precision: 0.4, F1: 0.57},
	}})
	if !strings.Contains(out, "q00") || !strings.Contains(out, "0.400") {
		t.Errorf("figure 9 render wrong:\n%s", out)
	}
	self := RenderT2DSelf(T2DSelfResult{SourcesTried: 80, PerfectReclamations: 26, MultiTable: 6, DuplicatesFound: 20})
	for _, want := range []string{"80", "26", "multi-table: 6", "duplicate: 20"} {
		if !strings.Contains(self, want) {
			t.Errorf("missing %q in %q", want, self)
		}
	}
}

func TestRenderAblationRow(t *testing.T) {
	out := RenderAblation(AblationRow{
		Name:    "x vs y",
		With:    metrics.Report{Recall: 1, Precision: 0.9, EIS: 0.99, DKL: 0.1},
		Without: metrics.Report{Recall: 1, Precision: 0.5, EIS: 0.95, DKL: 0.5},
	})
	for _, want := range []string{"x vs y", "with", "without", "0.900", "0.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
