package gent

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section VI), plus component micro-benchmarks. Sizes are scaled
// down so `go test -bench=. -benchmem` completes in minutes; the
// cmd/experiments tool exposes flags to run at larger scales.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"gent/internal/benchmark"
	"gent/internal/core"
	"gent/internal/discovery"
	"gent/internal/experiments"
	"gent/internal/index"
	lakePkg "gent/internal/lake"
	"gent/internal/matrix"
	"gent/internal/table"
	"gent/internal/tpch"
)

var (
	setOnce  sync.Once
	benchSet *experiments.BenchmarkSet

	wideOnce sync.Once
	wideSet  *benchmark.TPTR

	semOnce sync.Once
	semSet  *benchmark.TPTR
)

// semanticCorpus builds the `semantic` preset once per bench run: TP-TR plus
// a value-translated twin of every original — tables only the semantic
// channel can discover (zero exact overlap with any source).
func semanticCorpus(b *testing.B) *benchmark.TPTR {
	b.Helper()
	semOnce.Do(func() {
		s, err := benchmark.BuildSemanticPreset(11)
		if err != nil {
			panic(err)
		}
		semSet = s
	})
	return semSet
}

// wideCorpus builds the candidate-heavy `wide` preset once per bench run:
// TP-TR plus WidePresetSlices noisy slices of every original, so traversal
// faces dozens of overlapping candidates per source — the corpus the
// bound-and-prune engine is measured on.
func wideCorpus(b *testing.B) *benchmark.TPTR {
	b.Helper()
	wideOnce.Do(func() {
		w, err := benchmark.BuildWidePreset(0, 11)
		if err != nil {
			panic(err)
		}
		wideSet = w
	})
	return wideSet
}

func benchmarkSet(b *testing.B) *experiments.BenchmarkSet {
	b.Helper()
	setOnce.Do(func() {
		o := experiments.DefaultSetOptions()
		o.SmallBase = 16
		o.MedBase = 40
		o.LargeBase = 80
		o.Distractors = 60
		o.T2DTables = 40
		o.WDCTables = 120
		o.MaxSourceRows = 80
		set, err := experiments.BuildSet(o)
		if err != nil {
			panic(err)
		}
		benchSet = set
	})
	return benchSet
}

// BenchmarkTable1Stats regenerates Table I (benchmark statistics).
func BenchmarkTable1Stats(b *testing.B) {
	set := benchmarkSet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(set)
		if len(rows) != 6 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable2Effectiveness regenerates Table II (larger TP-TR
// benchmarks).
func BenchmarkTable2Effectiveness(b *testing.B) {
	set := benchmarkSet(b)
	opts := experiments.DefaultRunOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(set, opts)
		if len(res) != 3 {
			b.Fatal("wrong benchmark count")
		}
	}
}

// BenchmarkTable3Small regenerates Table III (all baselines on TP-TR Small).
func BenchmarkTable3Small(b *testing.B) {
	set := benchmarkSet(b)
	opts := experiments.DefaultRunOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(set, opts)
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable4WDC regenerates Table IV (T2D sources in the WDC sample).
func BenchmarkTable4WDC(b *testing.B) {
	set := benchmarkSet(b)
	opts := experiments.DefaultRunOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table4(set.WDC, opts)
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFigure6QueryClasses regenerates Figure 6 (recall/precision by
// query class).
func BenchmarkFigure6QueryClasses(b *testing.B) {
	set := benchmarkSet(b)
	opts := experiments.DefaultRunOptions()
	methods := []experiments.Method{experiments.MethodALITEPS, experiments.MethodGenT}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure6(set, methods, opts)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFigure7NoiseSweep regenerates Figure 7 (precision vs injected
// noise), with two sweep points per line to bound bench time.
func BenchmarkFigure7NoiseSweep(b *testing.B) {
	o := experiments.DefaultSetOptions()
	o.MedBase = 20
	o.MaxSourceRows = 40
	opts := experiments.DefaultRunOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure7(o, []int{10, 90}, opts)
		if err != nil || len(points) != 4 {
			b.Fatal("sweep failed")
		}
	}
}

// BenchmarkFigure8Scalability regenerates Figure 8 (runtimes and output-size
// ratios).
func BenchmarkFigure8Scalability(b *testing.B) {
	set := benchmarkSet(b)
	opts := experiments.DefaultRunOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure8(set, opts)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFigure9PerSource regenerates Figure 9 (per-source Gen-T vs
// ALITE-PS).
func BenchmarkFigure9PerSource(b *testing.B) {
	set := benchmarkSet(b)
	opts := experiments.DefaultRunOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure9(set, opts)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkT2DSelfReclamation regenerates the Section VI-D study.
func BenchmarkT2DSelfReclamation(b *testing.B) {
	set := benchmarkSet(b)
	opts := experiments.DefaultRunOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.T2DSelfReclamation(set.T2D, opts)
		if res.SourcesTried == 0 {
			b.Fatal("nothing tried")
		}
	}
}

// BenchmarkAblationMatrixEncoding compares three- vs two-valued matrices.
func BenchmarkAblationMatrixEncoding(b *testing.B) {
	set := benchmarkSet(b)
	opts := experiments.DefaultRunOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationMatrixEncoding(set.Small, opts)
	}
}

// BenchmarkAblationDiversify compares diversified vs raw candidate ranking.
func BenchmarkAblationDiversify(b *testing.B) {
	set := benchmarkSet(b)
	opts := experiments.DefaultRunOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationDiversify(set.Small, opts)
	}
}

// --- component micro-benchmarks ---

// BenchmarkGenTSingleSource times one end-to-end reclamation.
func BenchmarkGenTSingleSource(b *testing.B) {
	set := benchmarkSet(b)
	src := set.Small.Sources[0]
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Reclaim(set.Small.Lake, src, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReclaimPerQuery is the per-query baseline: every source of TP-TR
// Small through one-shot core.Reclaim, which rebuilds the discovery indexes
// for each query.
func BenchmarkReclaimPerQuery(b *testing.B) {
	set := benchmarkSet(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range set.Small.Sources {
			if _, err := core.Reclaim(set.Small.Lake, src, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReclaimAll runs the same sources through one Reclaimer session's
// batched API: the indexes are built once per session and shared by every
// query, so the amortized per-query time must come in below
// BenchmarkReclaimPerQuery.
func BenchmarkReclaimAll(b *testing.B) {
	set := benchmarkSet(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := core.NewReclaimer(set.Small.Lake, cfg).ReclaimAll(set.Small.Sources, 0)
		for _, item := range items {
			if item.Err != nil {
				b.Fatal(item.Err)
			}
		}
	}
}

// BenchmarkReclaimAllSequential isolates index reuse from batch parallelism:
// the shared-index session with a single worker.
func BenchmarkReclaimAllSequential(b *testing.B) {
	set := benchmarkSet(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := core.NewReclaimer(set.Small.Lake, cfg).ReclaimAll(set.Small.Sources, 1)
		for _, item := range items {
			if item.Err != nil {
				b.Fatal(item.Err)
			}
		}
	}
}

// BenchmarkSetSimilarity times candidate retrieval alone.
func BenchmarkSetSimilarity(b *testing.B) {
	set := benchmarkSet(b)
	src := set.Small.Sources[0]
	ix := index.BuildInverted(set.Small.Lake)
	opts := discovery.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		discovery.SetSimilarity(set.Small.Lake, ix, src, opts)
	}
}

// BenchmarkMatrixTraversal times originating-table selection alone.
func BenchmarkMatrixTraversal(b *testing.B) {
	set := benchmarkSet(b)
	src := set.Small.Sources[0]
	cands := discovery.Discover(set.Small.Lake, src, discovery.DefaultOptions())
	tables := make([]*table.Table, len(cands))
	for i, c := range cands {
		tables[i] = c.Table
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.Traverse(src, tables, matrix.ThreeValued)
	}
}

// BenchmarkTraverse compares the traversal engine's modes against the
// retained materialize-and-rescan baseline (TraverseReference) on the bench
// corpora's discovery candidate sets. "interned" is the engine as the
// pipeline runs it — bound-and-prune rounds, candidate alignment on the lake
// dictionary's ID tuples; "incremental" is the same pruned engine on
// canonical-string keys; "incremental-serial" pins the delta scorer's win
// with round parallelism turned off; "exhaustive" is the pruned engine's own
// baseline — identical packed kernel and interned alignment, every remaining
// candidate scored every round (the pre-PR9 engine), so interned-vs-
// exhaustive differ in nothing but the admissible bound and isolate what
// pruning saves; "reference" is the pre-engine implementation. The
// picks are identical across all five — see the equivalence tests and
// FuzzTraverseParity in internal/matrix — so only time and allocations
// differ. The `wide` corpus is the candidate-heavy preset where pruning
// dominates; small/med keep the historical trend lines.
func BenchmarkTraverse(b *testing.B) {
	set := benchmarkSet(b)
	run := func(name string, src *table.Table, tables []*table.Table, dict *table.Dict) {
		b.Run(name+"/interned", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.TraverseWith(src, tables, matrix.ThreeValued, matrix.TraverseOptions{Dict: dict})
			}
		})
		b.Run(name+"/incremental", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.Traverse(src, tables, matrix.ThreeValued)
			}
		})
		b.Run(name+"/incremental-serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.TraverseWith(src, tables, matrix.ThreeValued, matrix.TraverseOptions{Workers: 1})
			}
		})
		b.Run(name+"/exhaustive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.TraverseWith(src, tables, matrix.ThreeValued, matrix.TraverseOptions{Dict: dict, Exhaustive: true})
			}
		})
		b.Run(name+"/reference", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.TraverseReference(src, tables, matrix.ThreeValued)
			}
		})
	}
	for _, corpus := range []struct {
		name string
		b    *benchmark.TPTR
	}{{"small", set.Small}, {"med", set.Med}} {
		src := corpus.b.Sources[0]
		cands := discovery.Discover(corpus.b.Lake, src, discovery.DefaultOptions())
		tables := make([]*table.Table, len(cands))
		for i, c := range cands {
			tables[i] = c.Table
		}
		run(corpus.name, src, tables, corpus.b.Lake.Dict())
	}

	// The wide corpus: among its sources, benchmark the one whose traversal
	// prunes the most candidate-rounds (found with one untimed pruned run
	// each) — the deepest bound-and-prune workload the preset produces, and
	// the deterministic pick the BENCH trend line tracks.
	wide := wideCorpus(b)
	wopts := discovery.DefaultOptions()
	wopts.MaxCandidates = 256
	var wsrc *table.Table
	var wtables []*table.Table
	bestPruned := -1
	for _, src := range wide.Sources {
		cands := discovery.Discover(wide.Lake, src, wopts)
		tables := make([]*table.Table, len(cands))
		for i, c := range cands {
			tables[i] = c.Table
		}
		var st matrix.TraverseStats
		matrix.TraverseWith(src, tables, matrix.ThreeValued, matrix.TraverseOptions{
			Dict: wide.Lake.Dict(), OnStats: func(s matrix.TraverseStats) { st = s },
		})
		if st.CandidatesPruned > bestPruned {
			wsrc, wtables, bestPruned = src, tables, st.CandidatesPruned
		}
	}
	run("wide", wsrc, wtables, wide.Lake.Dict())
}

// BenchmarkReclaimAllWide runs the wide preset's multi-table sources — its
// deepest traversals — through one Reclaimer session with the discovery cap
// raised, so the batched pipeline exercises the pruned traversal path end to
// end. (All 26 sources would spend most of the time integrating, not
// traversing; the multi subset keeps the bench smoke's budget.)
func BenchmarkReclaimAllWide(b *testing.B) {
	wide := wideCorpus(b)
	var sources []*table.Table
	for _, src := range wide.Sources {
		if strings.Contains(src.Name, "_multi_") {
			sources = append(sources, src)
		}
	}
	cfg := core.DefaultConfig()
	cfg.Discovery.MaxCandidates = 160
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := core.NewReclaimer(wide.Lake, cfg).ReclaimAll(sources, 0)
		for _, item := range items {
			if item.Err != nil {
				b.Fatal(item.Err)
			}
		}
	}
}

// BenchmarkDiscoverInterned pins the dictionary's discovery win on the
// medium corpus: the full Table Discovery phase over the ID-keyed index
// (interned set representation) against the retained string-keyed reference.
// Both produce bit-identical candidates — see the equivalence tests in
// internal/discovery — so only time and allocations differ.
func BenchmarkDiscoverInterned(b *testing.B) {
	set := benchmarkSet(b)
	l := set.Med.Lake
	src := set.Med.Sources[0]
	opts := discovery.DefaultOptions()
	interned := &index.IndexSet{Inverted: index.BuildInverted(l)}
	reference := &index.IndexSet{Inverted: index.BuildInvertedReference(l)}
	b.Run("interned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.DiscoverWith(l, interned, src, opts)
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.DiscoverWith(l, reference, src, opts)
		}
	})
}

// BenchmarkDiscoverSemantic times the discovery strategies on the `semantic`
// preset — TP-TR plus value-translated twins — and pins the channel's reason
// to exist: the hybrid run must recall translated twins the syntactic run
// (exact set overlap) cannot see at all. Sub-benchmarks share one prebuilt
// full index set, so the embedding substrate's build cost is not measured,
// only the per-query channel cost.
func BenchmarkDiscoverSemantic(b *testing.B) {
	sem := semanticCorpus(b)
	snap := sem.Lake.Snapshot()
	ix := index.BuildIndexSetFull(snap, 0, nil)
	src := sem.Sources[0]
	twins := sem.TranslatedSets[src.Name]
	opts := discovery.DefaultOptions()
	opts.MaxCandidates = 60
	hits := func(cands []*discovery.Candidate) int {
		found := make(map[string]bool, len(cands))
		for _, c := range cands {
			for _, s := range c.Sources {
				found[s] = true
			}
		}
		n := 0
		for _, tw := range twins {
			if found[tw] {
				n++
			}
		}
		return n
	}
	b.Run("syntactic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if hits(discovery.DiscoverWith(sem.Lake, ix, src, opts)) != 0 {
				b.Fatal("syntactic discovery found a translated twin")
			}
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		hopts := opts
		hopts.Strategy = discovery.StrategyHybrid
		for i := 0; i < b.N; i++ {
			if hits(discovery.DiscoverWith(sem.Lake, ix, src, hopts)) == 0 {
				b.Fatal("hybrid discovery recalled no translated twin")
			}
		}
	})
}

// BenchmarkFullDisjunction times ALITE's core operation on the integrating
// set of one source — the cost Gen-T's pruning avoids.
func BenchmarkFullDisjunction(b *testing.B) {
	set := benchmarkSet(b)
	src := set.Small.Sources[0]
	inputs := set.Small.IntegratingTables(src.Name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.FullDisjunction(inputs, 40000)
	}
}

// BenchmarkInvertedIndexBuild times lake indexing.
func BenchmarkInvertedIndexBuild(b *testing.B) {
	set := benchmarkSet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.BuildInverted(set.Med.Lake)
	}
}

// BenchmarkMinHashTopK times the Starmie-stand-in first stage on the
// distractor-heavy lake.
func BenchmarkMinHashTopK(b *testing.B) {
	set := benchmarkSet(b)
	ix := index.BuildMinHashLSH(set.SantosMed.Lake)
	src := set.SantosMed.Sources[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopK(src, 40)
	}
}

// BenchmarkEpochApply pits incremental substrate maintenance against a full
// rebuild after a k-table delta lands on the medium (distractor-heavy)
// corpus — the v3 epoch lifecycle's cost model. "incremental" derives both
// substrates (inverted postings + MinHash sketches) from the previous
// epoch's via WithDelta; "rebuild" reconstructs them from the new snapshot.
// Both start from a fully interned lake, so the comparison isolates index
// maintenance. Small deltas must win by a wide margin (≥5× for k ≤ 10);
// at delta sizes rivaling the corpus the rebuild naturally catches up.
func BenchmarkEpochApply(b *testing.B) {
	set := benchmarkSet(b)
	for _, k := range []int{1, 10, 100} {
		// A private lake so epoch mutations cannot leak into the shared set.
		l := lakePkg.New()
		muts := make([]lakePkg.Mutation, 0, set.SantosMed.Lake.Len())
		for _, t := range set.SantosMed.Lake.Tables() {
			muts = append(muts, lakePkg.Put(t))
		}
		if _, err := l.Apply(context.Background(), muts...); err != nil {
			b.Fatal(err)
		}
		snapBase := l.Snapshot()
		snapBase.EnsureInterned()
		baseInv := index.BuildInverted(snapBase)
		baseLSH := index.BuildMinHashLSH(snapBase)

		// The k-table delta: fresh tables sharing part of the value space.
		rng := rand.New(rand.NewSource(int64(k)))
		adds := make([]lakePkg.Mutation, k)
		for i := range adds {
			t := table.New(fmt.Sprintf("delta_%d_%d", k, i), "dk", "dv", "dw")
			for r := 0; r < 30; r++ {
				t.AddRow(
					table.S(fmt.Sprintf("key-%d", rng.Intn(400))),
					table.S(fmt.Sprintf("val-%d", rng.Intn(400))),
					table.N(float64(rng.Intn(100))),
				)
			}
			adds[i] = lakePkg.Put(t)
		}
		if _, err := l.Apply(context.Background(), adds...); err != nil {
			b.Fatal(err)
		}
		snapNew := l.Snapshot()
		snapNew.EnsureInterned()
		addedTables, _, ok := lakePkg.Diff(snapBase, snapNew)
		if !ok || len(addedTables) != k {
			b.Fatalf("delta diff: ok=%v n=%d", ok, len(addedTables))
		}
		forms := make([]*table.Interned, k)
		for i, t := range addedTables {
			forms[i] = snapNew.Interned(t.Name)
		}

		b.Run(fmt.Sprintf("delta=%d/incremental", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inv := baseInv.WithDelta(forms, nil)
				lsh := baseLSH.WithDelta(forms, nil)
				if inv == nil || lsh == nil {
					b.Fatal("delta refused")
				}
			}
		})
		b.Run(fmt.Sprintf("delta=%d/rebuild", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				index.BuildInverted(snapNew)
				index.BuildMinHashLSH(snapNew)
			}
		})
	}
}

// BenchmarkTPCHGenerate times the data generator substrate.
func BenchmarkTPCHGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tpch.Generate(tpch.Scale{Base: 100, Seed: 1})
	}
}

// BenchmarkVariantConstruction times benchmark perturbation.
func BenchmarkVariantConstruction(b *testing.B) {
	o := benchmark.DefaultTPTROptions()
	o.Scale.Base = 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchmark.BuildTPTR("bench", o); err != nil {
			b.Fatal(err)
		}
	}
}
