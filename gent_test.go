package gent

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestPublicAPIQuickstart(t *testing.T) {
	// Build a tiny lake through the public API only — deliberately on the
	// deprecated v1 mutation surface, which must keep working for old
	// callers until it is removed.
	l := NewLake()

	names := NewTable("names", "id", "name")
	names.AddRow(S("e1"), S("Ada"))
	names.AddRow(S("e2"), S("Grace"))
	l.Add(names) //lint:allow deprecatedlake v1-surface compat coverage

	roles := NewTable("roles", "id", "role")
	roles.AddRow(S("e1"), S("Engineer"))
	roles.AddRow(S("e2"), S("Admiral"))
	l.Add(roles) //lint:allow deprecatedlake v1-surface compat coverage

	src := NewTable("target", "id", "name", "role")
	src.Key = []int{0}
	src.AddRow(S("e1"), S("Ada"), S("Engineer"))
	src.AddRow(S("e2"), S("Grace"), S("Admiral"))

	res, err := Reclaim(l, src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.PerfectReclamation {
		t.Errorf("quickstart scenario not reclaimed: %+v\n%s",
			res.Report, res.Reclaimed)
	}
	if len(res.Originating) != 2 {
		t.Errorf("expected 2 originating tables, got %d", len(res.Originating))
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	in := "id,name\n1,Ada\n2,Grace\n"
	tb, err := ReadTable(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if key := MineKey(tb, 2); len(key) != 1 {
		t.Errorf("mined key %v", key)
	}
	if got := EIS(withKey(tb), withKey(tb)); got != 1 {
		t.Errorf("self EIS = %v", got)
	}
	rep := Evaluate(withKey(tb), tb)
	if !rep.PerfectReclamation {
		t.Errorf("self evaluation not perfect: %+v", rep)
	}
}

func withKey(t *Table) *Table {
	c := t.Clone()
	c.Key = []int{0}
	return c
}

func TestPublicSessionAPI(t *testing.T) {
	l := NewLake()
	names := NewTable("names", "id", "name")
	names.AddRow(S("e1"), S("Ada"))
	names.AddRow(S("e2"), S("Grace"))
	roles := NewTable("roles", "id", "role")
	roles.AddRow(S("e1"), S("Engineer"))
	roles.AddRow(S("e2"), S("Admiral"))
	if _, err := l.Apply(context.Background(), Put(names), Put(roles)); err != nil {
		t.Fatal(err)
	}

	src := NewTable("target", "id", "name", "role")
	src.Key = []int{0}
	src.AddRow(S("e1"), S("Ada"), S("Engineer"))
	src.AddRow(S("e2"), S("Grace"), S("Admiral"))

	// Session reclamation, then the same session persisted and reloaded.
	r := NewReclaimer(l, DefaultConfig())
	res, err := r.Reclaim(src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.PerfectReclamation {
		t.Errorf("session reclaim not perfect: %+v", res.Report)
	}

	items := r.ReclaimAll([]*Table{src, src}, 2)
	if len(items) != 2 {
		t.Fatalf("batch size %d", len(items))
	}
	for _, item := range items {
		if item.Err != nil || !item.Result.Report.PerfectReclamation {
			t.Errorf("batched reclaim failed: %+v", item)
		}
	}

	dir := t.TempDir() + "/indexes"
	if err := SaveIndexes(dir, r); err != nil {
		t.Fatal(err)
	}
	ix, err := LoadIndexes(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewReclaimer(l, DefaultConfig())
	if err := r2.UseIndexes(ix); err != nil {
		t.Fatal(err)
	}
	res2, err := r2.Reclaim(src)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reclaimed.String() != res.Reclaimed.String() {
		t.Error("persisted-index session diverged from in-memory session")
	}
}

// buildSessionScenario assembles the lake and source the session tests use.
func buildSessionScenario() (*Lake, *Table) {
	l := NewLake()
	names := NewTable("names", "id", "name")
	names.AddRow(S("e1"), S("Ada"))
	names.AddRow(S("e2"), S("Grace"))
	roles := NewTable("roles", "id", "role")
	roles.AddRow(S("e1"), S("Engineer"))
	roles.AddRow(S("e2"), S("Admiral"))
	if _, err := l.Apply(context.Background(), Put(names), Put(roles)); err != nil {
		panic(err)
	}
	src := NewTable("target", "id", "name", "role")
	src.Key = []int{0}
	src.AddRow(S("e1"), S("Ada"), S("Engineer"))
	src.AddRow(S("e2"), S("Grace"), S("Admiral"))
	return l, src
}

// TestPublicV2Surface exercises the context-first API end to end: options,
// observer, deadline, typed errors, and the streaming batch.
func TestPublicV2Surface(t *testing.T) {
	l, src := buildSessionScenario()

	// ReclaimContext with options and an observer equals plain Reclaim.
	events := 0
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := ReclaimContext(ctx, l, src, DefaultConfig(),
		WithTraverseWorkers(2),
		WithObserver(ObserverFunc(func(ProgressEvent) { events++ })))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Reclaim(l, src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reclaimed.String() != plain.Reclaimed.String() {
		t.Error("v2 path diverged from legacy Reclaim")
	}
	if events == 0 {
		t.Error("observer saw no events")
	}
	tm := res.Timing
	if tm.Total() != tm.Discover+tm.Traverse+tm.Integrate+tm.Evaluate {
		t.Errorf("Timing.Total() must be the exact sum of the phases (incl. Evaluate): %+v", tm)
	}
	if tm.Evaluate <= 0 && runtime.GOOS != "windows" {
		t.Errorf("Timing.Evaluate not measured: %+v", tm)
	}

	// Cancellation surfaces a phase-tagged *Error wrapping context.Canceled.
	dead, kill := context.WithCancel(context.Background())
	kill()
	_, err = ReclaimContext(dead, l, src, DefaultConfig())
	var gerr *Error
	if !errors.Is(err, context.Canceled) || !errors.As(err, &gerr) {
		t.Fatalf("want phase-tagged cancellation, got %v", err)
	}
	if gerr.Phase != PhaseSource {
		t.Errorf("phase = %q, want %q", gerr.Phase, PhaseSource)
	}

	// Streaming batch: completion-order items, all delivered.
	r := NewReclaimer(l, DefaultConfig())
	seen := 0
	for item := range r.ReclaimStream(context.Background(), []*Table{src, src, src}, 2) {
		if item.Err != nil || !item.Result.Report.PerfectReclamation {
			t.Fatalf("stream item %d failed: %+v", item.Index, item.Err)
		}
		seen++
	}
	if seen != 3 {
		t.Fatalf("stream delivered %d of 3 items", seen)
	}
}

// TestPublicV3Surface exercises the epoch-versioned lake lifecycle through
// the public API: Apply batches, epoch monotonicity, snapshot pinning,
// observer epoch stamps, and the relaxed UseIndexes contract.
func TestPublicV3Surface(t *testing.T) {
	ctx := context.Background()
	l := NewLake()
	names := NewTable("names", "id", "name")
	names.AddRow(S("e1"), S("Ada"))
	names.AddRow(S("e2"), S("Grace"))
	e1, err := l.Apply(ctx, Put(names))
	if err != nil {
		t.Fatal(err)
	}
	if e1.IsZero() || e1 != l.Epoch() {
		t.Fatalf("epoch after Apply = %v, lake at %v", e1, l.Epoch())
	}

	// A pinned snapshot survives later mutations.
	pinned := l.Snapshot()
	roles := NewTable("roles", "id", "role")
	roles.AddRow(S("e1"), S("Engineer"))
	roles.AddRow(S("e2"), S("Admiral"))
	e2, err := l.Apply(ctx, Put(roles), RenameTable("names", "people"))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Seq != e1.Seq+1 {
		t.Fatalf("epochs not monotonic: %v then %v", e1, e2)
	}
	if pinned.Get("names") == nil || pinned.Get("roles") != nil {
		t.Fatal("pinned snapshot saw the mutation")
	}
	if cur := l.Snapshot(); cur.Get("people") == nil || cur.Get("names") != nil {
		t.Fatal("rename not applied")
	}

	// A session query at this epoch reclaims from the renamed catalog and
	// every observer event carries the pinned epoch.
	src := NewTable("target", "id", "name", "role")
	src.Key = []int{0}
	src.AddRow(S("e1"), S("Ada"), S("Engineer"))
	src.AddRow(S("e2"), S("Grace"), S("Admiral"))
	r := NewReclaimer(l, DefaultConfig())
	var epochs []Epoch
	res, err := r.ReclaimContext(ctx, src, WithObserver(ObserverFunc(func(ev ProgressEvent) {
		epochs = append(epochs, ev.Epoch)
	})))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.PerfectReclamation {
		t.Errorf("not reclaimed after rename: %+v", res.Report)
	}
	for _, e := range epochs {
		if e != e2 {
			t.Fatalf("observer event at %v, want %v", e, e2)
		}
	}

	// Injection: refused mid-epoch (old sentinel), refused with a stale
	// stamp after a new epoch (new sentinel wrapping the old), accepted
	// between epochs with a current stamp.
	ix := r.BuildIndexes()
	if err := r.UseIndexes(ix); !errors.Is(err, ErrSessionStarted) {
		t.Fatalf("mid-epoch injection: %v", err)
	}
	extra := NewTable("extra", "k", "v")
	extra.AddRow(S("k1"), S("v1"))
	if _, err := l.Apply(ctx, Put(extra)); err != nil {
		t.Fatal(err)
	}
	err = r.UseIndexes(ix)
	if !errors.Is(err, ErrEpochMismatch) || !errors.Is(err, ErrSessionStarted) {
		t.Fatalf("stale-stamp injection: %v", err)
	}
	if err := r.UseIndexes(NewReclaimer(l, DefaultConfig()).BuildIndexes()); err != nil {
		t.Fatalf("between-epoch injection: %v", err)
	}

	// Bad batches are atomic and typed.
	before := l.Epoch()
	if _, err := l.Apply(ctx, Put(extra), RenameTable("ghost", "x")); !errors.Is(err, ErrBadMutation) {
		t.Fatalf("bad batch: %v", err)
	}
	if l.Epoch() != before {
		t.Fatal("failed batch moved the epoch")
	}
}

func TestPublicSaveLoad(t *testing.T) {
	dir := t.TempDir()
	tb := NewTable("x", "a", "b")
	tb.AddRow(S("1"), N(2))
	if err := SaveTable(dir+"/x.csv", tb); err != nil {
		t.Fatal(err)
	}
	l, errs := LoadLake(dir)
	if len(errs) != 0 || l.Len() != 1 {
		t.Fatalf("load lake: %v, %d tables", errs, l.Len())
	}
	got, err := LoadTable(dir + "/x.csv")
	if err != nil || got.NumRows() != 1 {
		t.Fatalf("load table: %v", err)
	}
}
