package gent

import (
	"strings"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	// Build a tiny lake through the public API only.
	l := NewLake()

	names := NewTable("names", "id", "name")
	names.AddRow(S("e1"), S("Ada"))
	names.AddRow(S("e2"), S("Grace"))
	l.Add(names)

	roles := NewTable("roles", "id", "role")
	roles.AddRow(S("e1"), S("Engineer"))
	roles.AddRow(S("e2"), S("Admiral"))
	l.Add(roles)

	src := NewTable("target", "id", "name", "role")
	src.Key = []int{0}
	src.AddRow(S("e1"), S("Ada"), S("Engineer"))
	src.AddRow(S("e2"), S("Grace"), S("Admiral"))

	res, err := Reclaim(l, src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.PerfectReclamation {
		t.Errorf("quickstart scenario not reclaimed: %+v\n%s",
			res.Report, res.Reclaimed)
	}
	if len(res.Originating) != 2 {
		t.Errorf("expected 2 originating tables, got %d", len(res.Originating))
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	in := "id,name\n1,Ada\n2,Grace\n"
	tb, err := ReadTable(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if key := MineKey(tb, 2); len(key) != 1 {
		t.Errorf("mined key %v", key)
	}
	if got := EIS(withKey(tb), withKey(tb)); got != 1 {
		t.Errorf("self EIS = %v", got)
	}
	rep := Evaluate(withKey(tb), tb)
	if !rep.PerfectReclamation {
		t.Errorf("self evaluation not perfect: %+v", rep)
	}
}

func withKey(t *Table) *Table {
	c := t.Clone()
	c.Key = []int{0}
	return c
}

func TestPublicSessionAPI(t *testing.T) {
	l := NewLake()
	names := NewTable("names", "id", "name")
	names.AddRow(S("e1"), S("Ada"))
	names.AddRow(S("e2"), S("Grace"))
	l.Add(names)
	roles := NewTable("roles", "id", "role")
	roles.AddRow(S("e1"), S("Engineer"))
	roles.AddRow(S("e2"), S("Admiral"))
	l.Add(roles)

	src := NewTable("target", "id", "name", "role")
	src.Key = []int{0}
	src.AddRow(S("e1"), S("Ada"), S("Engineer"))
	src.AddRow(S("e2"), S("Grace"), S("Admiral"))

	// Session reclamation, then the same session persisted and reloaded.
	r := NewReclaimer(l, DefaultConfig())
	res, err := r.Reclaim(src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.PerfectReclamation {
		t.Errorf("session reclaim not perfect: %+v", res.Report)
	}

	items := r.ReclaimAll([]*Table{src, src}, 2)
	if len(items) != 2 {
		t.Fatalf("batch size %d", len(items))
	}
	for _, item := range items {
		if item.Err != nil || !item.Result.Report.PerfectReclamation {
			t.Errorf("batched reclaim failed: %+v", item)
		}
	}

	dir := t.TempDir() + "/indexes"
	if err := SaveIndexes(dir, r); err != nil {
		t.Fatal(err)
	}
	ix, err := LoadIndexes(dir)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := NewReclaimer(l, DefaultConfig()).UseIndexes(ix).Reclaim(src)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reclaimed.String() != res.Reclaimed.String() {
		t.Error("persisted-index session diverged from in-memory session")
	}
}

func TestPublicSaveLoad(t *testing.T) {
	dir := t.TempDir()
	tb := NewTable("x", "a", "b")
	tb.AddRow(S("1"), N(2))
	if err := SaveTable(dir+"/x.csv", tb); err != nil {
		t.Fatal(err)
	}
	l, errs := LoadLake(dir)
	if len(errs) != 0 || l.Len() != 1 {
		t.Fatalf("load lake: %v, %d tables", errs, l.Len())
	}
	got, err := LoadTable(dir + "/x.csv")
	if err != nil || got.NumRows() != 1 {
		t.Fatalf("load table: %v", err)
	}
}
