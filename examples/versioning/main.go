// Versioning: reclaiming a table that was produced by union over several
// partially-overlapping dataset versions — the public-data-lake situation
// (multiple versions of the same table, duplicates, and partial snapshots)
// that motivates candidate diversification.
//
//	go run ./examples/versioning
package main

import (
	"context"
	"fmt"
	"strings"

	"gent"
)

func main() {
	l := gent.NewLake()

	// Quarterly snapshots of a city permit registry: each covers a window,
	// adjacent snapshots overlap, and one snapshot was re-published twice
	// (an exact duplicate, as real open-data portals do).
	mk := func(name string, lo, hi int) *gent.Table {
		t := gent.NewTable(name, "permit", "street", "status")
		for i := lo; i < hi; i++ {
			status := "open"
			if i%3 == 0 {
				status = "closed"
			}
			t.AddRow(
				gent.S(fmt.Sprintf("PRM-%04d", i)),
				gent.S(fmt.Sprintf("%d Elm St", 100+i)),
				gent.S(status),
			)
		}
		return t
	}
	l.Add(mk("permits_q1", 0, 40))
	l.Add(mk("permits_q2", 30, 70))
	q2dup := mk("permits_q2_republished", 30, 70)
	l.Add(q2dup)
	l.Add(mk("permits_q3", 60, 100))

	// A stale export with wrong statuses — discovery must not let it win.
	stale := mk("permits_stale", 0, 100)
	for _, r := range stale.Rows {
		r[2] = gent.S("unknown")
	}
	l.Add(stale)

	// The Source: the registry's published year view (union of snapshots).
	src := gent.NewTable("permits_2023", "permit", "street", "status")
	src.Key = []int{0}
	for i := 0; i < 100; i++ {
		status := "open"
		if i%3 == 0 {
			status = "closed"
		}
		src.AddRow(
			gent.S(fmt.Sprintf("PRM-%04d", i)),
			gent.S(fmt.Sprintf("%d Elm St", 100+i)),
			gent.S(status),
		)
	}

	// A session would normally serve many such queries over one lake; here a
	// single context-first call suffices.
	res, err := gent.ReclaimContext(context.Background(), l, src, gent.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("EIS=%.3f Rec=%.3f Pre=%.3f perfect=%v\n",
		res.Report.EIS, res.Report.Recall, res.Report.Precision,
		res.Report.PerfectReclamation)
	fmt.Println("originating snapshots:")
	used := map[string]bool{}
	for _, c := range res.Originating {
		for _, s := range c.Sources {
			used[s] = true
		}
		fmt.Printf("  - %s\n", strings.Join(c.Sources, " ⋈ "))
	}
	if used["permits_stale"] {
		// Schema matching refuses to align the all-"unknown" status column
		// with the source's status column, so even when the stale export is
		// selected it can only contribute the values it gets right.
		if res.Report.Precision == 1 {
			fmt.Println("the stale export was used only for its correct columns —")
			fmt.Println("its wrong statuses never reached the output")
		} else {
			fmt.Println("WARNING: stale statuses polluted the output")
		}
	} else {
		fmt.Println("the stale export (wrong statuses) was correctly excluded")
	}
	if used["permits_q2"] && used["permits_q2_republished"] {
		fmt.Println("NOTE: both copies of Q2 were used (duplicates not collapsed)")
	} else {
		fmt.Println("the republished duplicate of Q2 was collapsed by diversification")
	}
}
