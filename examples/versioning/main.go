// Versioning: an evolving lake served by one long-lived session — the v3
// epoch lifecycle. Quarterly snapshots of a permit registry arrive over
// time (with a duplicate re-publication and a stale export, as real
// open-data portals have); the lake evolves through Apply batches, and the
// session's indexes follow each epoch incrementally instead of being
// rebuilt from scratch.
//
//	go run ./examples/versioning
package main

import (
	"context"
	"fmt"
	"strings"

	"gent"
)

// mkQuarter builds one quarterly snapshot covering permits [lo, hi).
func mkQuarter(name string, lo, hi int) *gent.Table {
	t := gent.NewTable(name, "permit", "street", "status")
	for i := lo; i < hi; i++ {
		status := "open"
		if i%3 == 0 {
			status = "closed"
		}
		t.AddRow(
			gent.S(fmt.Sprintf("PRM-%04d", i)),
			gent.S(fmt.Sprintf("%d Elm St", 100+i)),
			gent.S(status),
		)
	}
	return t
}

func main() {
	ctx := context.Background()
	l := gent.NewLake()

	// Epoch 1: the first three snapshots land in one Apply batch. Adjacent
	// snapshots overlap, and one was re-published twice (an exact
	// duplicate).
	e1, err := l.Apply(ctx,
		gent.Put(mkQuarter("permits_q1", 0, 40)),
		gent.Put(mkQuarter("permits_q2", 30, 70)),
		gent.Put(mkQuarter("permits_q2_republished", 30, 70)),
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("epoch %v: %d tables\n", e1, l.Len())

	// One session serves every query; its indexes are built at the first
	// query of an epoch and maintained incrementally across epochs.
	session := gent.NewReclaimer(l, gent.DefaultConfig())

	// The Source: the registry's published year view (union of snapshots).
	src := gent.NewTable("permits_2023", "permit", "street", "status")
	src.Key = []int{0}
	for i := 0; i < 100; i++ {
		status := "open"
		if i%3 == 0 {
			status = "closed"
		}
		src.AddRow(
			gent.S(fmt.Sprintf("PRM-%04d", i)),
			gent.S(fmt.Sprintf("%d Elm St", 100+i)),
			gent.S(status),
		)
	}

	// Every event of one run carries the epoch the run is pinned to.
	observer := gent.WithObserver(gent.ObserverFunc(func(ev gent.ProgressEvent) {
		if ev.Kind == gent.EventPhaseDone && ev.Phase == gent.PhaseDiscovery {
			fmt.Printf("  [%v] discovery: %d candidates\n", ev.Epoch, ev.Count)
		}
	}))

	res, err := session.ReclaimContext(ctx, src, observer)
	if err != nil {
		panic(err)
	}
	fmt.Printf("at %v (Q1-Q2 only): EIS=%.3f Recall=%.3f\n",
		l.Epoch(), res.Report.EIS, res.Report.Recall)

	// Epoch 2: Q3 lands, a stale export (every status overwritten with
	// "unknown") sneaks in alongside it, and the registry renames the
	// republished copy. The session does not rebuild: the next query
	// inserts the new tables' postings and sketches and tombstones the
	// renamed one's old name — a delta proportional to the change, not to
	// the lake.
	stale := mkQuarter("permits_stale", 0, 100)
	for _, r := range stale.Rows {
		r[2] = gent.S("unknown")
	}
	e2, err := l.Apply(ctx,
		gent.Put(mkQuarter("permits_q3", 60, 100)),
		gent.Put(stale),
		gent.RenameTable("permits_q2_republished", "permits_q2_2024_mirror"),
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("epoch %v: %d tables (indexes will catch up incrementally)\n", e2, l.Len())

	res, err = session.ReclaimContext(ctx, src, observer)
	if err != nil {
		panic(err)
	}
	fmt.Printf("at %v (full year): EIS=%.3f Recall=%.3f Precision=%.3f perfect=%v\n",
		l.Epoch(), res.Report.EIS, res.Report.Recall, res.Report.Precision,
		res.Report.PerfectReclamation)
	fmt.Println("originating snapshots:")
	used := map[string]bool{}
	for _, c := range res.Originating {
		for _, s := range c.Sources {
			used[s] = true
		}
		fmt.Printf("  - %s\n", strings.Join(c.Sources, " ⋈ "))
	}
	if used["permits_stale"] && res.Report.Precision < 1 {
		fmt.Println("WARNING: stale statuses polluted the output")
	} else {
		fmt.Println("the stale export's wrong statuses never reached the output")
	}

	// Epoch 3: the stale export is dropped. Queries pin the snapshot they
	// start on, so a query racing this Apply would still complete on epoch
	// 2; this one starts after and sees epoch 3.
	e3, err := l.Apply(ctx, gent.Drop("permits_stale"))
	if err != nil {
		panic(err)
	}
	res, err = session.ReclaimContext(ctx, src, observer)
	if err != nil {
		panic(err)
	}
	fmt.Printf("at %v (stale dropped): EIS=%.3f perfect=%v\n",
		e3, res.Report.EIS, res.Report.PerfectReclamation)
}
