// Datalake: a realistic on-disk workflow. This example materializes a
// TP-TR-style benchmark lake to a temporary directory (32 CSV files: clean
// tables perturbed into nullified and erroneous variants), loads it back the
// way a user would load their own lake, and reclaims one of the benchmark's
// query-defined Source Tables — comparing Gen-T's output against plain full
// disjunction of the same inputs.
//
//	go run ./examples/datalake
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gent"
	"gent/internal/baselines/alite"
	"gent/internal/benchmark"
)

func main() {
	dir, err := os.MkdirTemp("", "gent-datalake-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Build a small TP-TR benchmark and write its lake to disk.
	opts := benchmark.DefaultTPTROptions()
	opts.Scale.Base = 20
	opts.MaxSourceRows = 50
	b, err := benchmark.BuildTPTR("example", opts)
	if err != nil {
		panic(err)
	}
	if err := b.Lake.SaveDir(filepath.Join(dir, "lake")); err != nil {
		panic(err)
	}
	srcPath := filepath.Join(dir, "source.csv")
	src := b.Sources[0]
	if err := gent.SaveTable(srcPath, src); err != nil {
		panic(err)
	}

	// From here on: the user's workflow over files.
	l, errs := gent.LoadLake(filepath.Join(dir, "lake"))
	for _, e := range errs {
		fmt.Println("warning:", e)
	}
	loaded, err := gent.LoadTable(srcPath)
	if err != nil {
		panic(err)
	}
	// The CSV does not carry the key; mine it.
	loaded.Key = gent.MineKey(loaded, 2)
	fmt.Printf("lake: %d tables; source %q: %d rows, key %v\n",
		l.Len(), loaded.Name, loaded.NumRows(), loaded.KeyCols())

	// A file-backed run is exactly where a deadline matters: a malformed or
	// adversarial lake cannot hang the pipeline past the budget.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := gent.ReclaimContext(ctx, l, loaded, gent.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nGen-T: EIS=%.3f Rec=%.3f Pre=%.3f (%d candidates → %d originating)\n",
		res.Report.EIS, res.Report.Recall, res.Report.Precision,
		res.CandidateCount, len(res.Originating))
	fmt.Printf("timing: discover=%s traverse=%s integrate=%s evaluate=%s\n",
		res.Timing.Discover, res.Timing.Traverse, res.Timing.Integrate, res.Timing.Evaluate)

	// Contrast with the integration baseline given the same knowledge: full
	// disjunction over the benchmark's known integrating set.
	fd := alite.IntegratePS(loaded, b.IntegratingTables(src.Name), alite.Options{MaxRows: 20000})
	fdRep := gent.Evaluate(loaded, fd.Table)
	fmt.Printf("\nALITE-PS w/ int. set: Rec=%.3f Pre=%.3f (output %dx source size)\n",
		fdRep.Recall, fdRep.Precision, int(fdRep.SizeRatio))
	fmt.Println("\nGen-T reclaims from discovered tables only, filters the")
	fmt.Println("erroneous variants, and keeps the output close to source-sized.")
}
