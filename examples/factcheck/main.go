// Factcheck: the paper's motivating scenario (Section I, Figure 1). A news
// article reports tech-company workforce demographics; a user who only has a
// single company's diversity report sees contradicting numbers. Table
// reclamation answers: can any combination of lake tables reproduce the
// article's table — and from where do its values originate?
//
//	go run ./examples/factcheck
package main

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"gent"
)

func main() {
	l := gent.NewLake()

	// Worldwide ethnicity stats per company and year (matches the article).
	ethnicity := gent.NewTable("world_ethnicity",
		"company", "year", "pct_white", "pct_asian", "pct_black")
	add := func(t *gent.Table, vals ...gent.Value) { t.AddRow(vals...) }
	add(ethnicity, gent.S("Microsoft"), gent.N(2021), gent.N(54), gent.N(21), gent.N(13))
	add(ethnicity, gent.S("Microsoft"), gent.N(2020), gent.N(53), gent.N(20), gent.N(12))
	add(ethnicity, gent.S("Amazon"), gent.N(2021), gent.N(54), gent.N(21), gent.N(12))
	add(ethnicity, gent.S("Google"), gent.N(2021), gent.N(51), gent.N(24), gent.N(7))

	// Worldwide headcounts per company and year.
	employees := gent.NewTable("world_employees", "company", "year", "total_emps")
	add(employees, gent.S("Microsoft"), gent.N(2021), gent.N(181000))
	add(employees, gent.S("Microsoft"), gent.N(2020), gent.N(166000))
	add(employees, gent.S("Amazon"), gent.N(2021), gent.N(1608000))
	add(employees, gent.S("Google"), gent.N(2021), gent.N(156500))

	// The user's own US-only diversity report — numbers that *contradict*
	// the article because they cover a different population.
	usReport := gent.NewTable("us_diversity_report",
		"company", "pct_white", "pct_asian", "pct_black", "total_emps")
	add(usReport, gent.S("Microsoft"), gent.N(48.7), gent.N(35.4), gent.N(5.7), gent.N(103000))

	// Unrelated lake noise.
	stocks := gent.NewTable("stock_prices", "company", "price")
	add(stocks, gent.S("Microsoft"), gent.N(310))
	add(stocks, gent.S("Amazon"), gent.N(3300))

	// Publish the lake in one epoch turn via the v3 mutation surface.
	if _, err := l.Apply(context.Background(),
		gent.Put(ethnicity), gent.Put(employees), gent.Put(usReport), gent.Put(stocks)); err != nil {
		panic(err)
	}

	// The news article's table (the Source to reclaim), keyed by company.
	article := gent.NewTable("news_article",
		"company", "pct_white", "pct_asian", "pct_black", "total_emps")
	article.Key = []int{0}
	add(article, gent.S("Microsoft"), gent.N(54), gent.N(21), gent.N(13), gent.N(181000))
	add(article, gent.S("Amazon"), gent.N(54), gent.N(21), gent.N(12), gent.N(1608000))
	add(article, gent.S("Google"), gent.N(51), gent.N(24), gent.N(7), gent.N(156500))

	// A fact-check is a served query: require the lake to actually hold
	// evidence (no candidates = "cannot verify", a typed error) instead of
	// silently scoring an all-null table.
	res, err := gent.ReclaimContext(context.Background(), l, article, gent.DefaultConfig(),
		gent.WithRequireCandidates())
	if errors.Is(err, gent.ErrNoCandidates) {
		fmt.Println("the lake holds no evidence about this table")
		return
	}
	if err != nil {
		panic(err)
	}

	fmt.Println("Can the lake reproduce the article's table?")
	fmt.Printf("  EIS=%.3f  Recall=%.3f  Precision=%.3f  perfect=%v\n\n",
		res.Report.EIS, res.Report.Recall, res.Report.Precision,
		res.Report.PerfectReclamation)
	fmt.Println("Originating tables (where the article's values come from):")
	for _, cand := range res.Originating {
		fmt.Printf("  - %s\n", strings.Join(cand.Sources, " ⋈ "))
	}
	fmt.Printf("\nReclaimed table:\n%s\n", res.Reclaimed)
	fmt.Println("The article is reproducible from the *worldwide* tables —")
	fmt.Println("not from the US-only diversity report. The contradiction is a")
	fmt.Println("difference in population, not an error.")
}
