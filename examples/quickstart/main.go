// Quickstart: reclaim a small Source Table from an in-memory lake using the
// public gent API — the paper's Figure 3 running example, end to end, on the
// v2 context-first surface: a deadline, a progress observer, and per-call
// options layered over the default configuration.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"time"

	"gent"
)

func main() {
	// The data lake: three autonomous tables about the same applicants.
	// Table C's "Gender" column contradicts reality — exactly the kind of
	// misleading table reclamation must cope with.
	l := gent.NewLake()

	a := gent.NewTable("education", "id", "person", "degree")
	a.AddRow(gent.S("id0"), gent.S("Smith"), gent.S("Bachelors"))
	a.AddRow(gent.S("id1"), gent.S("Brown"), gent.Null)
	a.AddRow(gent.S("id2"), gent.S("Wang"), gent.S("High School"))

	b := gent.NewTable("ages", "person", "years")
	b.AddRow(gent.S("Smith"), gent.N(27))
	b.AddRow(gent.S("Brown"), gent.N(24))
	b.AddRow(gent.S("Wang"), gent.N(32))

	c := gent.NewTable("genders", "person", "sex")
	c.AddRow(gent.S("Smith"), gent.S("Male"))
	c.AddRow(gent.S("Brown"), gent.S("Male"))
	c.AddRow(gent.S("Wang"), gent.S("Male"))

	// One Apply publishes all three tables as a single epoch turn — the v3
	// mutation surface (the v1 Add shim is deprecated).
	if _, err := l.Apply(context.Background(), gent.Put(a), gent.Put(b), gent.Put(c)); err != nil {
		panic(err)
	}

	// The Source Table the analyst wants to verify (key: ID). Note the
	// correct null — Smith's gender is genuinely unknown.
	src := gent.NewTable("applicants", "ID", "Name", "Age", "Gender", "Education")
	src.Key = []int{0}
	src.AddRow(gent.S("id0"), gent.S("Smith"), gent.N(27), gent.Null, gent.S("Bachelors"))
	src.AddRow(gent.S("id1"), gent.S("Brown"), gent.N(24), gent.S("Male"), gent.S("Masters"))
	src.AddRow(gent.S("id2"), gent.S("Wang"), gent.N(32), gent.S("Female"), gent.S("High School"))

	// Reclaim with a deadline (a pathological query cannot hang the caller)
	// and an observer that narrates each phase as it completes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := gent.ReclaimContext(ctx, l, src, gent.DefaultConfig(),
		gent.WithObserver(gent.ObserverFunc(func(ev gent.ProgressEvent) {
			if ev.Kind == gent.EventPhaseDone {
				fmt.Printf("  [%s done in %s]\n", ev.Phase, ev.Elapsed.Round(time.Microsecond))
			}
		})))
	if err != nil {
		panic(err)
	}

	fmt.Println("originating tables:")
	for _, cand := range res.Originating {
		fmt.Printf("  %v\n", cand.Sources)
	}
	fmt.Printf("\nreclaimed table:\n%s\n", res.Reclaimed)
	fmt.Printf("EIS=%.3f  Recall=%.3f  Precision=%.3f  Inst-Div=%.3f\n",
		res.Report.EIS, res.Report.Recall, res.Report.Precision, res.Report.InstDiv)
	fmt.Println("\nValues the lake could not confirm stay null (Brown's Masters,")
	fmt.Println("Wang's gender) — and the contradicting genders table was not")
	fmt.Println("allowed to overwrite Smith's correct null.")
}
