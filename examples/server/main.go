// Server: the network lifecycle end to end, in one process. A lake is
// served by gentd's HTTP surface on a loopback listener, and the typed
// client walks the serving contract: a cold query (cache miss), the same
// query again (served from the epoch-keyed result cache), an Apply rolling
// the lake to a new epoch (which invalidates the cache), the query once
// more on the new catalog, and finally a graceful drain.
//
//	go run ./examples/server
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"gent"
	"gent/internal/server/client"
)

func main() {
	ctx := context.Background()

	// A small lake: two clean vertical partitions of the source and noise.
	src := gent.NewTable("staff", "id", "name", "team", "grade")
	src.Key = []int{0}
	for i := 0; i < 10; i++ {
		src.AddRow(
			gent.S(fmt.Sprintf("E%02d", i)),
			gent.S(fmt.Sprintf("person-%d", i)),
			gent.S(fmt.Sprintf("team-%d", i%3)),
			gent.N(float64(5+i%4)),
		)
	}
	left := src.Project("id", "name", "team")
	left.Name = "dir_people"
	left.Key = nil
	right := src.Project("id", "grade")
	right.Name = "dir_grades"
	right.Key = nil
	l := gent.NewLake()
	if _, err := l.Apply(ctx, gent.Put(left), gent.Put(right)); err != nil {
		panic(err)
	}

	// The server: one session on a port. The zero config bounds admission
	// off the session and enables the result cache.
	srv := gent.NewServer(gent.NewReclaimer(l, gent.DefaultConfig()), gent.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d tables at %s\n", l.Len(), base)

	c := client.New(base, nil)

	// Cold: the full pipeline runs; the response says which epoch it pinned.
	r1, err := c.Reclaim(ctx, src, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cold  query: epoch %s EIS=%.3f cached=%v\n", r1.Epoch, r1.Metrics.EIS, r1.Cached)

	// Warm: the identical question at the same epoch is a cache hit — no
	// pipeline work at all.
	r2, err := c.Reclaim(ctx, src, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("warm  query: epoch %s EIS=%.3f cached=%v\n", r2.Epoch, r2.Metrics.EIS, r2.Cached)

	// A mutation rolls the epoch; the next Apply is the cache flush.
	extra := gent.NewTable("dir_audit", "id", "note")
	extra.AddRow(gent.S("E00"), gent.S("reviewed"))
	ar, err := c.Apply(ctx, client.Put(extra))
	if err != nil {
		panic(err)
	}
	fmt.Printf("apply      : epoch %s, %d tables\n", ar.Epoch, ar.Tables)

	r3, err := c.Reclaim(ctx, src, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fresh query: epoch %s EIS=%.3f cached=%v\n", r3.Epoch, r3.Metrics.EIS, r3.Cached)

	stats, err := c.Stats(ctx, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cache      : hits=%d misses=%d invalidations=%d\n",
		stats.Cache.Hits, stats.Cache.Misses, stats.Cache.Invalidations)

	// Graceful exit: drain (health goes 503, in-flight work finishes), then
	// close the listener.
	if err := srv.Drain(ctx); err != nil {
		panic(err)
	}
	if err := c.Health(ctx); err != nil {
		fmt.Println("drained    : /healthz now refuses (as a balancer should see)")
	}
	if err := hs.Shutdown(ctx); err != nil {
		panic(err)
	}
}
